// Scenario: exhaustive input-vector analysis of a small block -- the
// paper's Section 6.2 workflow.
//
// For circuits with few inputs the whole transition space is enumerable:
// the 3-bit adder has 2^6 x 2^6 = 4096 vector pairs, which the
// switch-level simulator chews through in a fraction of a second.  The
// example ranks every transition by MTCMOS degradation, prints the
// worst offenders (the shortlist one would hand to a detailed simulator),
// and shows how the worst *CMOS* vector is NOT the worst MTCMOS vector --
// the central warning of the paper.
//
// Build & run:  ./build/examples/adder_vector_sweep [--threads N]
// (default thread count: MTCMOS_THREADS env var, else all cores)

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "circuits/generators.hpp"
#include "core/glitch.hpp"
#include "core/vbs.hpp"
#include "models/sleep_transistor.hpp"
#include "models/technology.hpp"
#include "netlist/bits.hpp"
#include "sizing/sizing.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace mtcmos;
  using namespace mtcmos::units;
  using netlist::uint_from_bits;

  int threads = util::ThreadPool::default_thread_count();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) threads = 1;
    } else {
      std::cerr << "usage: adder_vector_sweep [--threads N]\n";
      return 2;
    }
  }
  util::ThreadPool pool(threads);

  const auto adder = circuits::make_ripple_adder(tech07(), 3);
  std::vector<std::string> outputs;
  for (const auto s : adder.sum) outputs.push_back(adder.netlist.net_name(s));
  outputs.push_back(adder.netlist.net_name(adder.cout));
  const sizing::DelayEvaluator eval(adder.netlist, outputs);
  const double wl = 8.0;

  const auto pairs = sizing::all_vector_pairs(6);
  std::cout << "Sweeping " << pairs.size() << " vector transitions at sleep W/L = " << wl
            << " on " << pool.thread_count() << " threads ...\n";
  const auto t0 = std::chrono::steady_clock::now();
  const auto ranked = sizing::rank_vectors(eval, pairs, wl, &pool);
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::cout << ranked.size() << " transitions toggle an output; swept in " << secs
            << " s (paper: 13.5 s on a Sparc 5 for the same space)\n\n";

  Table top({"v0 (b:a)", "v1 (b:a)", "CMOS tpd [ns]", "MTCMOS tpd [ns]", "degr [%]"});
  for (std::size_t i = 0; i < 10 && i < ranked.size(); ++i) {
    const auto& vd = ranked[i];
    top.add_row({std::to_string(uint_from_bits(vd.pair.v0)),
                 std::to_string(uint_from_bits(vd.pair.v1)),
                 Table::num(vd.delay_cmos / ns, 4), Table::num(vd.delay_mtcmos / ns, 4),
                 Table::num(vd.degradation_pct, 3)});
  }
  std::cout << "Worst 10 transitions by MTCMOS degradation (SPICE-verification\n"
               "shortlist):\n";
  top.print(std::cout);

  // The paper's warning: worst-CMOS != worst-MTCMOS.
  const auto worst_cmos = std::max_element(
      ranked.begin(), ranked.end(),
      [](const auto& a, const auto& b) { return a.delay_cmos < b.delay_cmos; });
  const auto worst_mt = std::max_element(
      ranked.begin(), ranked.end(),
      [](const auto& a, const auto& b) { return a.delay_mtcmos < b.delay_mtcmos; });
  std::cout << "\nWorst CMOS-delay vector:   " << uint_from_bits(worst_cmos->pair.v0) << " -> "
            << uint_from_bits(worst_cmos->pair.v1) << " (" << worst_cmos->delay_cmos / ns
            << " ns CMOS, " << worst_cmos->delay_mtcmos / ns << " ns MTCMOS)\n";
  std::cout << "Worst MTCMOS-delay vector: " << uint_from_bits(worst_mt->pair.v0) << " -> "
            << uint_from_bits(worst_mt->pair.v1) << " (" << worst_mt->delay_cmos / ns
            << " ns CMOS, " << worst_mt->delay_mtcmos / ns << " ns MTCMOS)\n";
  if (worst_cmos != worst_mt) {
    std::cout << "They differ: a critical-path tool calibrated for CMOS would pick\n"
                 "the wrong vector for MTCMOS sizing (paper Section 2.4).\n";
  }

  // Glitch anatomy of the worst transition (paper Sec 2.4: glitching is
  // what makes MTCMOS worst cases hard to guess).
  {
    const auto& worst = ranked.front();
    core::VbsOptions opt;
    opt.sleep_resistance = SleepTransistor(tech07(), wl).reff();
    const core::VbsSimulator sim(adder.netlist, opt);
    const auto res = sim.run(worst.pair.v0, worst.pair.v1);
    const auto rep = core::analyze_glitches(res, adder.netlist, worst.pair.v0, worst.pair.v1);
    std::cout << "\nGlitch report for the worst transition: " << rep.glitching_nets.size()
              << " nets glitch, " << rep.total_extra_crossings
              << " non-functional threshold crossings, wasted switched charge "
              << rep.wasted_charge_cap * 1e15 << " fC\n";
    for (std::size_t i = 0; i < 3 && i < rep.glitching_nets.size(); ++i) {
      const auto& ng = rep.glitching_nets[i];
      std::cout << "  " << adder.netlist.net_name(ng.net) << ": partial swing "
                << ng.worst_partial << " V, extra crossings " << ng.extra_crossings << "\n";
    }
  }

  // How much sleep transistor does each target cost on this block?
  std::cout << "\nSizing vs target (worst 25 vectors as the stress set):\n";
  std::vector<sizing::VectorPair> stress;
  for (std::size_t i = 0; i < 25 && i < ranked.size(); ++i) stress.push_back(ranked[i].pair);
  Table sizes({"target degr [%]", "required W/L"});
  for (double target : {20.0, 10.0, 5.0, 2.0}) {
    const auto s = sizing::size_for_degradation(eval, stress, target, 1.0, 4000.0, 0.5, &pool);
    sizes.add_row({Table::num(target, 3), Table::num(s.wl, 4)});
  }
  sizes.print(std::cout);
  return 0;
}
