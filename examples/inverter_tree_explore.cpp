// Scenario: explore how a clock-distribution tree misbehaves in MTCMOS,
// and what each modeling refinement adds.
//
// The Fig. 4 inverter tree is the cleanest demonstration of simultaneous
// discharge: nine third-stage inverters dump current into one sleep
// device at once.  This example runs the switch-level simulator with each
// extension toggled -- paper-exact model, body effect, virtual-ground
// capacitance, reverse conduction -- and prints what changes, ending with
// a leaf-delay vs Vdd sweep (the tool's advertised "delay as a function
// of design variables such as Vdd, Vt, and sleep transistor sizing").
//
// Build & run:  ./build/examples/inverter_tree_explore

#include <iostream>

#include "circuits/generators.hpp"
#include "core/vbs.hpp"
#include "models/sleep_transistor.hpp"
#include "models/technology.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace mtcmos;
  using namespace mtcmos::units;

  const Technology tech = tech07();
  const auto tree = circuits::make_inverter_tree(tech);
  const std::string leaf = tree.netlist.net_name(tree.leaves[0]);
  const double wl = 8.0;
  const double reff = SleepTransistor(tech, wl).reff();
  std::cout << "Fig. 4 inverter tree (1 -> 3 -> 9), sleep W/L = " << wl
            << " (R_eff = " << reff / 1e3 << " kOhm)\n\n";

  // Model-extension matrix.
  Table table({"model", "leaf tpd [ns]", "Vx peak [V]", "breakpoints"});
  auto run = [&](const std::string& name, core::VbsOptions opt) {
    opt.sleep_resistance = reff;
    const core::VbsSimulator sim(tree.netlist, opt);
    const auto res = sim.run({false}, {true});
    const auto d = sim.delay({false}, {true}, "in", leaf);
    table.add_row({name, Table::num(d / ns, 4), Table::num(res.vx_peak, 3),
                   std::to_string(res.breakpoints)});
  };
  run("paper Eq. 5 (default)", {});
  {
    core::VbsOptions o;
    o.body_effect = true;
    run("+ body effect", o);
  }
  {
    core::VbsOptions o;
    o.virtual_ground_cap = 5.0 * pF;
    run("+ Cx = 5 pF", o);
  }
  {
    core::VbsOptions o;
    o.reverse_conduction = true;
    run("+ reverse conduction", o);
  }
  {
    core::VbsOptions o;
    o.body_effect = true;
    o.virtual_ground_cap = 5.0 * pF;
    o.reverse_conduction = true;
    run("all extensions", o);
  }
  table.print(std::cout);

  // Vdd sweep: the simulator's "delay as a function of design variables".
  std::cout << "\nLeaf delay vs Vdd at fixed sleep geometry (the sleep device's\n"
               "R_eff grows as Vdd approaches Vt,high = 0.75 V -- paper Sec 2.1):\n";
  Table sweep({"Vdd [V]", "R_eff [kOhm]", "leaf tpd CMOS [ns]", "leaf tpd MTCMOS [ns]",
               "degr [%]"});
  for (double vdd : {1.6, 1.4, 1.2, 1.0, 0.9}) {
    Technology t = tech;
    t.vdd = vdd;
    const auto tr = circuits::make_inverter_tree(t);
    const std::string lf = tr.netlist.net_name(tr.leaves[0]);
    const double r = SleepTransistor(t, wl).reff();
    core::VbsOptions cmos;  // R = 0
    core::VbsOptions mt;
    mt.sleep_resistance = r;
    const double d0 = core::VbsSimulator(tr.netlist, cmos).delay({false}, {true}, "in", lf);
    const double d1 = core::VbsSimulator(tr.netlist, mt).delay({false}, {true}, "in", lf);
    sweep.add_row({Table::num(vdd, 3), Table::num(r / 1e3, 4), Table::num(d0 / ns, 4),
                   Table::num(d1 / ns, 4), Table::num((d1 - d0) / d0 * 100.0, 3)});
  }
  sweep.print(std::cout);
  std::cout << "\nNote how the MTCMOS penalty explodes at low Vdd: scaled supplies\n"
               "need disproportionately larger sleep transistors (paper Sec 2.1).\n";
  return 0;
}
