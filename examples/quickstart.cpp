// Quickstart: size the sleep transistor of a small MTCMOS block.
//
// Walks the complete toolkit flow on a 3-bit ripple-carry adder:
//   1. build a circuit from the cell library,
//   2. simulate one input transition with the variable-breakpoint
//      switch-level simulator and look at the virtual-ground bounce,
//   3. let the sizing engine pick the smallest sleep W/L that keeps the
//      worst-vector delay degradation under 10%,
//   4. sanity-check the chosen size against the transistor-level engine.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "circuits/generators.hpp"
#include "core/vbs.hpp"
#include "models/sleep_transistor.hpp"
#include "models/technology.hpp"
#include "netlist/bits.hpp"
#include "sizing/sizing.hpp"
#include "sizing/spice_ref.hpp"
#include "util/units.hpp"

int main() {
  using namespace mtcmos;
  using namespace mtcmos::units;
  using netlist::bits_from_uint;
  using netlist::concat_bits;

  // 1. A 3-bit mirror-adder ripple chain in the 0.7 um / 1.2 V process.
  const Technology tech = tech07();
  const auto adder = circuits::make_ripple_adder(tech, 3);
  std::cout << "Circuit: 3-bit ripple-carry adder, " << adder.netlist.gate_count()
            << " gates, " << adder.netlist.transistor_count() << " transistors\n";

  std::vector<std::string> outputs;
  for (const auto s : adder.sum) outputs.push_back(adder.netlist.net_name(s));
  outputs.push_back(adder.netlist.net_name(adder.cout));

  // 2. One transition through the switch-level simulator: 0+0 -> 7+1
  //    ripples a carry through the whole chain.
  const sizing::VectorPair vp{concat_bits(bits_from_uint(0, 3), bits_from_uint(0, 3)),
                              concat_bits(bits_from_uint(7, 3), bits_from_uint(1, 3))};
  core::VbsOptions vbs_opt;
  vbs_opt.sleep_resistance = SleepTransistor(tech, 10.0).reff();
  const core::VbsSimulator vbs(adder.netlist, vbs_opt);
  const core::VbsResult res = vbs.run(vp.v0, vp.v1);
  std::cout << "\nW/L = 10 simulation: " << res.breakpoints << " breakpoints, "
            << "virtual ground peaked at " << res.vx_peak * 1e3 << " mV, last output settled "
            << res.finish_time / ns << " ns in\n";

  // 3. Size for <= 5% worst-case degradation over a set of stress vectors.
  const sizing::DelayEvaluator eval(adder.netlist, outputs);
  const std::vector<sizing::VectorPair> vectors = {
      vp,
      {concat_bits(bits_from_uint(0, 3), bits_from_uint(0, 3)),
       concat_bits(bits_from_uint(7, 3), bits_from_uint(7, 3))},
      {concat_bits(bits_from_uint(5, 3), bits_from_uint(2, 3)),
       concat_bits(bits_from_uint(2, 3), bits_from_uint(5, 3))},
  };
  const sizing::SizingResult sized = sizing::size_for_degradation(eval, vectors, 10.0);
  std::cout << "\nSizing for <= 10% degradation: W/L = " << sized.wl << " (achieves "
            << sized.degradation_pct << "%)\n";
  std::cout << "Naive sum-of-widths baseline: W/L = "
            << sizing::sum_of_widths_wl(adder.netlist) << " ("
            << sizing::sum_of_widths_wl(adder.netlist) / sized.wl
            << "x the sized device; on big blocks the gap is 10-20x, see the\n"
            << "sec4_peak_current bench)\n";

  // 4. Verify the chosen size at transistor level.
  sizing::SpiceRefOptions sref;
  sref.expand.sleep_wl = sized.wl;
  sref.tstop = 12.0 * ns;
  sizing::SpiceRef ref(adder.netlist, outputs, sref);
  sizing::SpiceRefOptions cref = sref;
  cref.expand.ground = netlist::ExpandOptions::Ground::kIdeal;
  sizing::SpiceRef cmos(adder.netlist, outputs, cref);
  const double d_mt = ref.measure(vp).delay;
  const double d_cm = cmos.measure(vp).delay;
  std::cout << "\nTransistor-level check at W/L = " << sized.wl << ": CMOS " << d_cm / ns
            << " ns -> MTCMOS " << d_mt / ns << " ns ("
            << (d_mt - d_cm) / d_cm * 100.0 << "% degradation)\n";
  return 0;
}
