// Columnar block store: roundtrip, width changes, tagging, torn-tail
// truncation on append-reopen, CRC rejection, first-block-wins merge
// dedup, and the discard() abandon path.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/columnar.hpp"

namespace mtcmos {
namespace {

using util::ColumnarOptions;
using util::ColumnarRow;
using util::ColumnarWriter;
using util::merge_columnar_file;
using util::scan_columnar_file;

struct Row {
  std::uint64_t tag;
  std::string key;
  std::vector<double> values;
};

std::vector<Row> scan_all(const std::string& path) {
  std::vector<Row> rows;
  scan_columnar_file(path, [&](const ColumnarRow& r) {
    rows.push_back({r.tag, std::string(r.key), std::vector<double>(r.values, r.values + r.n_cols)});
  });
  return rows;
}

class ColumnarTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("columnar_test." +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "." +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name = "rows.mtc") const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(ColumnarTest, RoundTripPreservesKeysValuesAndOrder) {
  ColumnarWriter w;
  w.open(path());
  const double a[3] = {1.5, -2.25, 1e-12};
  const double b[3] = {0.0, 3.0, 0x1.fffffffffffffp+1};
  w.append("item:a", a, 3);
  w.append("item:b", b, 3);
  w.close();

  const auto rows = scan_all(path());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].key, "item:a");
  EXPECT_EQ(rows[1].key, "item:b");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rows[0].values[static_cast<std::size_t>(i)], a[i]);  // exact bit patterns
    EXPECT_EQ(rows[1].values[static_cast<std::size_t>(i)], b[i]);
  }
}

TEST_F(ColumnarTest, WidthChangeStartsANewBlock) {
  ColumnarWriter w;
  w.open(path());
  const double wide[3] = {1, 2, 3};
  const double narrow = 9.5;
  w.append("wide", wide, 3);
  w.append("narrow", &narrow, 1);  // must not throw; flushes the 3-col block
  w.close();
  EXPECT_EQ(w.blocks_written(), 2u);

  const auto rows = scan_all(path());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].values.size(), 3u);
  EXPECT_EQ(rows[1].values.size(), 1u);
}

TEST_F(ColumnarTest, TagsStampBlocksAndSettingATagFlushes) {
  ColumnarWriter w;
  w.open(path());
  const double v = 1.0;
  w.set_tag(7);
  w.append("k7", &v, 1);
  w.set_tag(8);  // flushes the tag-7 block first
  w.append("k8", &v, 1);
  w.close();

  const auto rows = scan_all(path());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].tag, 7u);
  EXPECT_EQ(rows[1].tag, 8u);
}

TEST_F(ColumnarTest, AppendReopenExtendsTheFile) {
  const double v = 2.5;
  {
    ColumnarWriter w;
    w.open(path());
    w.set_tag(1);
    w.append("first", &v, 1);
    w.close();
  }
  {
    ColumnarWriter w;
    w.open(path());
    EXPECT_EQ(w.truncated_bytes(), 0u);
    w.set_tag(2);
    w.append("second", &v, 1);
    w.close();
  }
  const auto rows = scan_all(path());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].key, "first");
  EXPECT_EQ(rows[1].key, "second");
}

TEST_F(ColumnarTest, TornTailIsTruncatedOnReopenAndSkippedByScan) {
  const double v = 4.0;
  {
    ColumnarWriter w;
    w.open(path());
    w.append("good", &v, 1);
    w.flush();
    w.append("torn", &v, 1);
    w.flush();
    w.close();
  }
  // Shear the last 5 bytes off: a crash mid-write of the second block.
  const auto full = std::filesystem::file_size(path());
  std::filesystem::resize_file(path(), full - 5);

  std::vector<Row> rows;
  const std::size_t skipped =
      scan_columnar_file(path(), [&](const ColumnarRow& r) {
        rows.push_back({r.tag, std::string(r.key), {}});
      });
  EXPECT_GT(skipped, 0u);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].key, "good");

  // Append-reopen truncates the torn tail, then new blocks extend cleanly.
  ColumnarWriter w;
  w.open(path());
  EXPECT_GT(w.truncated_bytes(), 0u);
  w.append("after", &v, 1);
  w.close();
  const auto after = scan_all(path());
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[0].key, "good");
  EXPECT_EQ(after[1].key, "after");
}

TEST_F(ColumnarTest, CorruptedPayloadStopsTheScanAtTheBadBlock) {
  const double v = 8.0;
  {
    ColumnarWriter w;
    w.open(path());
    w.append("ok", &v, 1);
    w.flush();
    w.append("bad", &v, 1);
    w.flush();
    w.close();
  }
  // Flip one byte in the *last* block's payload; its CRC must reject it.
  const auto size = std::filesystem::file_size(path());
  std::fstream f(path(), std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(static_cast<std::streamoff>(size - 3));
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(static_cast<std::streamoff>(size - 3));
  byte = static_cast<char>(byte ^ 0x5A);
  f.write(&byte, 1);
  f.close();

  std::vector<Row> rows;
  const std::size_t skipped = scan_columnar_file(path(), [&](const ColumnarRow& r) {
    rows.push_back({r.tag, std::string(r.key), {}});
  });
  EXPECT_GT(skipped, 0u);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].key, "ok");
}

TEST_F(ColumnarTest, DiscardDropsBufferedRowsOnly) {
  ColumnarWriter w;
  w.open(path());
  const double v = 1.0;
  w.set_tag(1);
  w.append("committed", &v, 1);
  w.flush();
  w.set_tag(2);
  w.append("abandoned", &v, 1);
  w.discard();  // interrupted chunk: no partial tag-2 block may land
  w.close();

  const auto rows = scan_all(path());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].key, "committed");
  // A later complete re-run of tag 2 is then the first (and only) block.
  ColumnarWriter w2;
  w2.open(path());
  w2.set_tag(2);
  w2.append("rerun", &v, 1);
  w2.close();
  const auto after = scan_all(path());
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[1].tag, 2u);
  EXPECT_EQ(after[1].key, "rerun");
}

TEST_F(ColumnarTest, MergeDedupesByTagFirstBlockWins) {
  const double one = 1.0, two = 2.0;
  // Shard A holds tags 1 and 2; shard B holds tags 2 and 3 (duplicate 2).
  {
    ColumnarWriter a;
    a.open(path("a.mtc"));
    a.set_tag(1);
    a.append("t1", &one, 1);
    a.set_tag(2);
    a.append("t2", &one, 1);
    a.close();
    ColumnarWriter b;
    b.open(path("b.mtc"));
    b.set_tag(2);
    b.append("t2", &one, 1);
    b.set_tag(3);
    b.append("t3", &two, 1);
    b.close();
  }
  ColumnarWriter dest;
  dest.open(path("merged.mtc"));
  std::vector<std::uint64_t> seen;
  const std::size_t from_a = merge_columnar_file(dest, path("a.mtc"), &seen);
  const std::size_t from_b = merge_columnar_file(dest, path("b.mtc"), &seen);
  dest.close();
  EXPECT_EQ(from_a, 2u);
  EXPECT_EQ(from_b, 1u);  // duplicate tag 2 dropped

  const auto rows = scan_all(path("merged.mtc"));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].tag, 1u);
  EXPECT_EQ(rows[1].tag, 2u);
  EXPECT_EQ(rows[2].tag, 3u);
}

TEST_F(ColumnarTest, MergeSeesDestinationsExistingTags) {
  const double v = 1.0;
  {
    ColumnarWriter src;
    src.open(path("src.mtc"));
    src.set_tag(5);
    src.append("dup", &v, 1);
    src.close();
  }
  ColumnarWriter dest;
  dest.open(path("dest.mtc"));
  dest.set_tag(5);
  dest.append("original", &v, 1);
  dest.flush();
  std::vector<std::uint64_t> seen;  // pre-populated from dest by the first call
  EXPECT_EQ(merge_columnar_file(dest, path("src.mtc"), &seen), 0u);
  dest.close();

  const auto rows = scan_all(path("dest.mtc"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].key, "original");
}

TEST_F(ColumnarTest, ScanOfMissingFileThrows) {
  EXPECT_THROW(scan_columnar_file(path("absent.mtc"), [](const ColumnarRow&) {}),
               std::runtime_error);
}

TEST_F(ColumnarTest, BlockFilterSkipsWholeBlocks) {
  ColumnarWriter w;
  w.open(path());
  const double v = 1.0;
  w.set_tag(1);
  w.append("keep", &v, 1);
  w.set_tag(2);
  w.append("skip", &v, 1);
  w.close();

  std::vector<Row> rows;
  scan_columnar_file(
      path(), [&](const ColumnarRow& r) { rows.push_back({r.tag, std::string(r.key), {}}); },
      [](std::uint64_t tag) { return tag != 2; });
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].key, "keep");
}

TEST_F(ColumnarTest, AutoFlushAtRowsPerBlock) {
  ColumnarOptions opts;
  opts.rows_per_block = 4;
  ColumnarWriter w;
  w.open(path(), opts);
  const double v = 3.0;
  for (int i = 0; i < 10; ++i) w.append("k" + std::to_string(i), &v, 1);
  EXPECT_EQ(w.blocks_written(), 2u);  // two full blocks; 2 rows still buffered
  w.close();
  EXPECT_EQ(scan_all(path()).size(), 10u);
}

}  // namespace
}  // namespace mtcmos
