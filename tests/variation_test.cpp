// Tests for Monte-Carlo process variation and yield-aware sizing.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "models/technology.hpp"
#include "netlist/bits.hpp"
#include "sizing/variation.hpp"

namespace mtcmos::sizing {
namespace {

using netlist::bits_from_uint;
using netlist::concat_bits;

const NetlistBuilder kAdderBuilder = [](const Technology& t) {
  return circuits::make_ripple_adder(t, 2).netlist;
};

std::vector<std::string> adder_outputs() {
  const auto ref = circuits::make_ripple_adder(tech07(), 2);
  std::vector<std::string> outs;
  for (const auto s : ref.sum) outs.push_back(ref.netlist.net_name(s));
  return outs;
}

VectorPair stress_pair() {
  return {concat_bits(bits_from_uint(0, 2), bits_from_uint(0, 2)),
          concat_bits(bits_from_uint(3, 2), bits_from_uint(3, 2))};
}

TEST(Percentile, NearestRank) {
  const std::vector<double> s = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile_of(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(s, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile_of(s, 0.95), 5.0);
  EXPECT_DOUBLE_EQ(percentile_of(s, 1.0), 5.0);
  EXPECT_THROW(percentile_of({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile_of(s, 1.5), std::invalid_argument);
}

TEST(MonteCarlo, ZeroSigmaReproducesNominal) {
  VariationModel model;
  model.sigma_vt_low = 0.0;
  model.sigma_vt_high = 0.0;
  model.sigma_kp_frac = 0.0;
  Rng rng(5);
  const auto res = monte_carlo_degradation(kAdderBuilder, tech07(), adder_outputs(),
                                           stress_pair(), 10.0, model, 20, rng);
  EXPECT_GT(res.nominal, 0.0);
  EXPECT_NEAR(res.mean, res.nominal, 1e-9);
  EXPECT_NEAR(res.worst, res.nominal, 1e-9);
  EXPECT_EQ(res.failed_samples, 0);
}

TEST(MonteCarlo, SpreadGrowsWithSigma) {
  VariationModel small;
  small.sigma_vt_high = 0.01;
  VariationModel big;
  big.sigma_vt_high = 0.04;
  Rng r1(7), r2(7);
  const auto a = monte_carlo_degradation(kAdderBuilder, tech07(), adder_outputs(), stress_pair(),
                                         10.0, small, 100, r1);
  const auto b = monte_carlo_degradation(kAdderBuilder, tech07(), adder_outputs(), stress_pair(),
                                         10.0, big, 100, r2);
  EXPECT_GT(b.worst - b.p50, a.worst - a.p50);
  EXPECT_GT(b.p95, a.p95);
}

TEST(MonteCarlo, DeterministicUnderSeed) {
  VariationModel model;
  Rng r1(99), r2(99);
  const auto a = monte_carlo_degradation(kAdderBuilder, tech07(), adder_outputs(), stress_pair(),
                                         12.0, model, 50, r1);
  const auto b = monte_carlo_degradation(kAdderBuilder, tech07(), adder_outputs(), stress_pair(),
                                         12.0, model, 50, r2);
  ASSERT_EQ(a.degradation_pct.size(), b.degradation_pct.size());
  for (std::size_t i = 0; i < a.degradation_pct.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.degradation_pct[i], b.degradation_pct[i]);
  }
}

TEST(MonteCarlo, P95AboveMedian) {
  VariationModel model;
  Rng rng(3);
  const auto res = monte_carlo_degradation(kAdderBuilder, tech07(), adder_outputs(),
                                           stress_pair(), 15.0, model, 200, rng);
  EXPECT_GE(res.p95, res.p50);
  EXPECT_GE(res.worst, res.p95);
  EXPECT_LE(res.degradation_pct.front(), res.p50);
}

TEST(YieldSizing, BiggerThanNominalAndMeetsTarget) {
  VariationModel model;
  const double target = 15.0;
  const double wl_yield = wl_for_yield(kAdderBuilder, tech07(), adder_outputs(), stress_pair(),
                                       target, 0.95, model, 80, /*seed=*/11);
  // Nominal-corner sizing for the same target must be smaller.
  VariationModel zero;
  zero.sigma_vt_low = zero.sigma_vt_high = 0.0;
  zero.sigma_kp_frac = 0.0;
  const double wl_nominal = wl_for_yield(kAdderBuilder, tech07(), adder_outputs(), stress_pair(),
                                         target, 0.95, zero, 1, /*seed=*/11);
  EXPECT_GT(wl_yield, wl_nominal);
  // Verify the yield size out of sample.
  Rng rng(777);
  const auto res = monte_carlo_degradation(kAdderBuilder, tech07(), adder_outputs(),
                                           stress_pair(), wl_yield, model, 200, rng);
  EXPECT_LE(res.p95, target * 1.1);  // allow sampling noise
}

TEST(YieldSizing, ImpossibleTargetThrows) {
  VariationModel model;
  EXPECT_THROW(wl_for_yield(kAdderBuilder, tech07(), adder_outputs(), stress_pair(), 0.0001,
                            0.95, model, 20, 1, 1.0, 4.0),
               NumericalError);
}

TEST(MonteCarlo, ExtremeSigmaRejected) {
  VariationModel model;
  model.sigma_vt_high = 5.0;  // would push Vt,high past Vdd on most samples
  Rng rng(1);
  EXPECT_THROW(monte_carlo_degradation(kAdderBuilder, tech07(), adder_outputs(), stress_pair(),
                                       10.0, model, 10, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtcmos::sizing
