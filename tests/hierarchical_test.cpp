// Tests for multi-sleep-domain simulation and the mutual-exclusion
// discharge analysis.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "core/vbs.hpp"
#include "models/sleep_transistor.hpp"
#include "models/technology.hpp"
#include "netlist/bits.hpp"
#include "sizing/hierarchical.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace mtcmos::sizing {
namespace {

using netlist::NetId;
using netlist::Netlist;
using mtcmos::units::fF;

/// Two independent inverters with heavy loads on separate input bits.
Netlist two_inverters(const Technology& t) {
  Netlist nl(t);
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.add_load(nl.add_inv("ga_inv", a), 80.0 * fF);
  nl.add_load(nl.add_inv("gb_inv", b), 80.0 * fF);
  return nl;
}

TEST(DomainsByPrefix, AssignsAndValidates) {
  const Netlist nl = two_inverters(tech07());
  const auto dom = domains_by_prefix(nl, {"ga_", "gb_"});
  ASSERT_EQ(dom.size(), 2u);
  EXPECT_EQ(dom[0], 0);
  EXPECT_EQ(dom[1], 1);
  EXPECT_THROW(domains_by_prefix(nl, {"ga_"}), std::invalid_argument);
  EXPECT_THROW(domains_by_prefix(nl, {}), std::invalid_argument);
}

TEST(MultiDomainVbs, DomainsDoNotInteract) {
  // Gate A in a domain with huge resistance; gate B in a clean domain.
  // B's falling delay must equal the single-gate case even when A
  // discharges simultaneously.
  const Technology t = tech07();
  const Netlist nl = two_inverters(t);
  const auto dom = domains_by_prefix(nl, {"ga_", "gb_"});

  core::VbsOptions opt;
  const core::VbsSimulator split(nl, opt, dom, {20e3, 0.0});
  const core::VbsSimulator clean(nl, opt, dom, {0.0, 0.0});
  const double d_b_split = split.delay({false, false}, {true, true}, "b", "gb_inv.out");
  const double d_b_clean = clean.delay({false, false}, {true, true}, "b", "gb_inv.out");
  EXPECT_NEAR(d_b_split, d_b_clean, 1e-15);
  // While A (in the resistive domain) is much slower than B.
  const double d_a_split = split.delay({false, false}, {true, true}, "a", "ga_inv.out");
  EXPECT_GT(d_a_split, 2.0 * d_b_split);
}

TEST(MultiDomainVbs, SharedDomainDoesInteract) {
  // Same circuit, both gates in ONE resistive domain: B slows down when A
  // discharges at the same time.
  const Technology t = tech07();
  const Netlist nl = two_inverters(t);
  core::VbsOptions opt;
  opt.sleep_resistance = 3000.0;
  const core::VbsSimulator shared(nl, opt);
  const double solo = shared.delay({false, true}, {true, true}, "a", "ga_inv.out");
  const double both = shared.delay({false, false}, {true, true}, "a", "ga_inv.out");
  EXPECT_GT(both, solo * 1.05);
}

TEST(MultiDomainVbs, PerDomainTracesRecorded) {
  const Technology t = tech07();
  const Netlist nl = two_inverters(t);
  const auto dom = domains_by_prefix(nl, {"ga_", "gb_"});
  core::VbsOptions opt;
  const core::VbsSimulator sim(nl, opt, dom, {2000.0, 1000.0});
  const auto res = sim.run({false, false}, {true, true});
  EXPECT_TRUE(res.domain_grounds.has("vgnd0"));
  EXPECT_TRUE(res.domain_grounds.has("vgnd1"));
  EXPECT_TRUE(res.domain_currents.has("isleep0"));
  EXPECT_TRUE(res.domain_currents.has("isleep1"));
  // Higher-R domain bounces higher for the same discharger.
  EXPECT_GT(res.domain_grounds.get("vgnd0").max_value(),
            res.domain_grounds.get("vgnd1").max_value());
}

TEST(MultiDomainVbs, ConstructorValidation) {
  const Technology t = tech07();
  const Netlist nl = two_inverters(t);
  core::VbsOptions opt;
  EXPECT_THROW(core::VbsSimulator(nl, opt, {0, 0, 0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(core::VbsSimulator(nl, opt, {0, 2}, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(core::VbsSimulator(nl, opt, {0, 0}, {}), std::invalid_argument);
  // Negative resistance is an option *value* failure: coded kInvalidArgument.
  EXPECT_THROW(core::VbsSimulator(nl, opt, {0, 0}, {-1.0}), NumericalError);
}

TEST(DischargeOverlap, SimultaneousBlocksScoreLow) {
  // Both inverters discharge at the same instant -> total peak ~ sum.
  const Technology t = tech07();
  const Netlist nl = two_inverters(t);
  const auto dom = domains_by_prefix(nl, {"ga_", "gb_"});
  const std::vector<VectorPair> vectors = {{{false, false}, {true, true}}};
  const auto ov = analyze_discharge_overlap(nl, dom, 2, vectors);
  EXPECT_GT(ov.peak_per_domain[0], 0.0);
  EXPECT_GT(ov.peak_per_domain[1], 0.0);
  EXPECT_NEAR(ov.peak_simultaneous, ov.peak_sum_of_domains, 1e-6 * ov.peak_sum_of_domains);
  EXPECT_LT(ov.exclusivity, 0.05);
}

TEST(DischargeOverlap, CascadedBlocksScoreHigh) {
  // A chain: inverter A drives inverter B -- B discharges only after A
  // has charged (sequential bursts).
  const Technology t = tech07();
  Netlist nl(t);
  const NetId in = nl.add_input("in");
  const NetId a = nl.add_inv("a_inv", in);
  nl.add_load(a, 60.0 * fF);
  const NetId b = nl.add_inv("b_inv", a);
  nl.add_load(b, 60.0 * fF);
  const auto dom = domains_by_prefix(nl, {"a_", "b_"});
  // in: 1 -> 0 : A discharges? a_inv output rises when in falls; b falls
  // after.  Use in: 0 -> 1: A falls first, then B rises (PMOS, no
  // discharge).  Use both transitions to cover a discharge in each block.
  const std::vector<VectorPair> vectors = {{{false}, {true}}, {{true}, {false}}};
  const auto ov = analyze_discharge_overlap(nl, dom, 2, vectors);
  EXPECT_GT(ov.exclusivity, 0.9);
}

TEST(DischargeOverlap, SingleDomainIsTriviallyExclusive) {
  const Technology t = tech07();
  const Netlist nl = two_inverters(t);
  const std::vector<VectorPair> vectors = {{{false, false}, {true, true}}};
  const auto ov =
      analyze_discharge_overlap(nl, std::vector<int>(2, 0), 1, vectors);
  EXPECT_DOUBLE_EQ(ov.exclusivity, 1.0);
  EXPECT_NEAR(ov.peak_sum_of_domains, ov.peak_simultaneous, 1e-12);
}

TEST(PartitionOptimizer, MergesExclusiveBlocks) {
  // Cascaded inverters (sequential bursts): merging saves width, and with
  // a high exclusivity floor the optimizer still merges them.
  const Technology t = tech07();
  Netlist nl(t);
  const NetId in = nl.add_input("in");
  const NetId a = nl.add_inv("a_inv", in);
  nl.add_load(a, 60.0 * fF);
  const NetId b = nl.add_inv("b_inv", a);
  nl.add_load(b, 60.0 * fF);
  const auto dom = domains_by_prefix(nl, {"a_", "b_"});
  const std::vector<VectorPair> vectors = {{{false}, {true}}, {{true}, {false}}};
  const auto plan = optimize_sleep_partition(nl, dom, 2, vectors, 0.05, 0.9);
  EXPECT_EQ(plan.group_of_block[0], plan.group_of_block[1]);  // merged
  EXPECT_LT(plan.total_wl, plan.per_block_total_wl * 0.99);
  EXPECT_NEAR(plan.total_wl, plan.single_device_wl, 1e-9);
}

TEST(PartitionOptimizer, ExclusivityFloorBlocksNoisyMerge) {
  // Two simultaneous dischargers: the union peak equals the sum, so with
  // a high floor they must stay on separate devices.
  const Technology t = tech07();
  const Netlist nl = two_inverters(t);
  const auto dom = domains_by_prefix(nl, {"ga_", "gb_"});
  const std::vector<VectorPair> vectors = {{{false, false}, {true, true}}};
  const auto strict = optimize_sleep_partition(nl, dom, 2, vectors, 0.05, 0.9);
  EXPECT_NE(strict.group_of_block[0], strict.group_of_block[1]);
  EXPECT_NEAR(strict.total_wl, strict.per_block_total_wl, 1e-9);
  // With the floor dropped, merging is allowed but saves nothing
  // (simultaneous peaks add), so either outcome must preserve width.
  const auto loose = optimize_sleep_partition(nl, dom, 2, vectors, 0.05, 0.0);
  EXPECT_NEAR(loose.total_wl, loose.single_device_wl, 0.02 * loose.single_device_wl);
}

TEST(PartitionOptimizer, SingleBlockTrivial) {
  const Technology t = tech07();
  const Netlist nl = two_inverters(t);
  const auto plan = optimize_sleep_partition(nl, std::vector<int>(2, 0), 1,
                                             {{{false, false}, {true, true}}}, 0.05);
  EXPECT_EQ(plan.group_wl.size(), 1u);
  EXPECT_NEAR(plan.total_wl, plan.single_device_wl, 1e-9);
}

TEST(PartitionOptimizer, Validation) {
  const Technology t = tech07();
  const Netlist nl = two_inverters(t);
  const std::vector<int> dom(2, 0);
  EXPECT_THROW(optimize_sleep_partition(nl, dom, 0, {{{false, false}, {true, true}}}, 0.05),
               std::invalid_argument);
  EXPECT_THROW(optimize_sleep_partition(nl, dom, 1, {}, 0.05), std::invalid_argument);
  EXPECT_THROW(optimize_sleep_partition(nl, dom, 1, {{{false, false}, {true, true}}}, -1.0),
               std::invalid_argument);
  EXPECT_THROW(optimize_sleep_partition(nl, dom, 1, {{{false, false}, {true, true}}}, 0.05, 2.0),
               std::invalid_argument);
}

TEST(DischargeOverlap, InputValidation) {
  const Technology t = tech07();
  const Netlist nl = two_inverters(t);
  EXPECT_THROW(analyze_discharge_overlap(nl, std::vector<int>(2, 0), 0, {{{false, false},
                                                                          {true, true}}}),
               std::invalid_argument);
  EXPECT_THROW(analyze_discharge_overlap(nl, std::vector<int>(2, 0), 1, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtcmos::sizing
