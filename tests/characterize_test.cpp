// Tests for the NLDM-style cell characterizer.

#include <gtest/gtest.h>

#include "models/technology.hpp"
#include "netlist/sp_expr.hpp"
#include "sizing/characterize.hpp"
#include "util/units.hpp"

namespace mtcmos::sizing {
namespace {

using netlist::SpExpr;
using mtcmos::units::fF;
using mtcmos::units::ps;

CharacterizeSpec inverter_spec() {
  CharacterizeSpec spec;
  spec.pulldown = SpExpr::input(0);
  spec.n_pins = 1;
  spec.static_pins = {false};
  spec.slews = {20.0 * ps, 100.0 * ps, 300.0 * ps};
  spec.loads = {10.0 * fF, 40.0 * fF, 120.0 * fF};
  return spec;
}

TEST(Characterize, DelayMonotoneInLoadAndSlew) {
  const auto table = characterize_cell(tech07(), inverter_spec());
  for (std::size_t si = 0; si < table.slews.size(); ++si) {
    for (std::size_t li = 0; li + 1 < table.loads.size(); ++li) {
      EXPECT_LT(table.delay_fall[si][li], table.delay_fall[si][li + 1]);
      EXPECT_LT(table.delay_rise[si][li], table.delay_rise[si][li + 1]);
    }
  }
  for (std::size_t li = 0; li < table.loads.size(); ++li) {
    for (std::size_t si = 0; si + 1 < table.slews.size(); ++si) {
      EXPECT_LT(table.delay_fall[si][li], table.delay_fall[si + 1][li]);
    }
  }
}

TEST(Characterize, OutputTransitionGrowsWithLoad) {
  const auto table = characterize_cell(tech07(), inverter_spec());
  for (std::size_t si = 0; si < table.slews.size(); ++si) {
    EXPECT_LT(table.trans_fall[si][0], table.trans_fall[si][2]);
    EXPECT_LT(table.trans_rise[si][0], table.trans_rise[si][2]);
  }
}

TEST(Characterize, SleepDeratesFallOnly) {
  CharacterizeSpec plain = inverter_spec();
  CharacterizeSpec gated = inverter_spec();
  gated.ground = netlist::ExpandOptions::Ground::kSleepFet;
  gated.sleep_wl = 8.0;
  const auto tp = characterize_cell(tech07(), plain);
  const auto tg = characterize_cell(tech07(), gated);
  for (std::size_t si = 0; si < tp.slews.size(); ++si) {
    for (std::size_t li = 0; li < tp.loads.size(); ++li) {
      EXPECT_GT(tg.delay_fall[si][li], 1.1 * tp.delay_fall[si][li]);
      EXPECT_NEAR(tg.delay_rise[si][li] / tp.delay_rise[si][li], 1.0, 0.03);
    }
  }
}

TEST(Characterize, LookupExactAtGridPointsAndInterpolatesBetween) {
  const auto table = characterize_cell(tech07(), inverter_spec());
  EXPECT_DOUBLE_EQ(table.delay(false, table.slews[1], table.loads[2]),
                   table.delay_fall[1][2]);
  // Midpoint lies between the bracketing grid values.
  const double mid_load = 0.5 * (table.loads[0] + table.loads[1]);
  const double v = table.delay(false, table.slews[0], mid_load);
  EXPECT_GT(v, table.delay_fall[0][0]);
  EXPECT_LT(v, table.delay_fall[0][1]);
  // Clamped outside the grid.
  EXPECT_DOUBLE_EQ(table.delay(false, table.slews[0], 1e-18), table.delay_fall[0][0]);
  EXPECT_DOUBLE_EQ(table.delay(false, 1.0, table.loads[2]),
                   table.delay_fall[table.slews.size() - 1][2]);
}

TEST(Characterize, Nand2StackSlowerThanInverter) {
  CharacterizeSpec nand2;
  nand2.pulldown = SpExpr::series({SpExpr::input(0), SpExpr::input(1)});
  nand2.n_pins = 2;
  nand2.switch_pin = 0;
  nand2.static_pins = {false, true};
  nand2.slews = {60.0 * ps};
  nand2.loads = {40.0 * fF};
  CharacterizeSpec inv = inverter_spec();
  inv.slews = {60.0 * ps};
  inv.loads = {40.0 * fF};
  const auto tn = characterize_cell(tech07(), nand2);
  const auto ti = characterize_cell(tech07(), inv);
  EXPECT_GT(tn.delay_fall[0][0], ti.delay_fall[0][0]);  // 2-stack pull-down
}

TEST(Characterize, NonControllingPinRejected) {
  CharacterizeSpec bad;
  bad.pulldown = SpExpr::series({SpExpr::input(0), SpExpr::input(1)});
  bad.n_pins = 2;
  bad.switch_pin = 0;
  bad.static_pins = {false, false};  // other NAND input low: pin 0 cannot control
  EXPECT_THROW(characterize_cell(tech07(), bad), std::invalid_argument);
}

TEST(Characterize, SpecValidation) {
  CharacterizeSpec spec = inverter_spec();
  spec.static_pins = {};
  EXPECT_THROW(characterize_cell(tech07(), spec), std::invalid_argument);
  spec = inverter_spec();
  spec.switch_pin = 5;
  EXPECT_THROW(characterize_cell(tech07(), spec), std::invalid_argument);
  spec = inverter_spec();
  spec.slews.clear();
  EXPECT_THROW(characterize_cell(tech07(), spec), std::invalid_argument);
}

}  // namespace
}  // namespace mtcmos::sizing
