// Daemon kill-and-reconnect soak: round after round, a forked
// mtcmos_sizerd is SIGKILLed at a randomized lifecycle site -- before a
// randomized streamed row, between journal and ack, right after the
// read -- restarted on the same state directory, killed again during
// the headless restart-resume, restarted once more, and finally asked
// the same question over a fresh connection.  Every round must end with
// the byte-identical row stream of an uninterrupted run.
//
// Deliberately heavier than the unit suite: registered under the `soak`
// ctest configuration (ctest -C soak) so plain `ctest` skips it.  The
// RNG seed is fixed; every run exercises the same kill schedule.

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "sizing/daemon.hpp"
#include "util/faultinject.hpp"
#include "util/socket.hpp"
#include "util/subprocess.hpp"

namespace mtcmos {
namespace {

namespace fs = std::filesystem;
using sizing::Daemon;
using sizing::DaemonOptions;
using util::ChildProcess;
using util::LineChannel;

constexpr int kRounds = 12;
constexpr char kRank[] = "{\"op\":\"rank\",\"circuit\":\"builtin:adder2\",\"wl\":6}";

class DaemonSoak : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("daemon_soak." + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    faultinject::disarm_all();
    fs::remove_all(dir_);
  }

  std::string sock() const { return (dir_ / "d.sock").string(); }

  ChildProcess start(const std::string& state_dir) {
    DaemonOptions opt;
    opt.socket_path = sock();
    opt.state_dir = state_dir;
    opt.poll_interval_ms = 10;
    ChildProcess child = util::spawn_child([opt](int) -> int {
      Daemon daemon(opt);
      return Daemon::exit_code(daemon.serve());
    });
    util::close_fd(child.pipe_fd);
    return child;
  }

  std::unique_ptr<LineChannel> connect() {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (true) {
      try {
        return std::make_unique<LineChannel>(util::unix_connect(sock()));
      } catch (const std::exception&) {
        if (std::chrono::steady_clock::now() >= deadline) throw;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
  }

  /// Send `request` and read lines until `done`/`error` or EOF.  Returns
  /// the row/value lines; `done` reports whether a done line arrived.
  std::vector<std::string> collect(LineChannel& ch, const std::string& request, bool& done) {
    done = false;
    std::vector<std::string> rows;
    EXPECT_TRUE(ch.send(request));
    std::string line;
    while (ch.recv(line, 120000)) {
      if (line.find("\"type\":\"row\"") != std::string::npos ||
          line.find("\"type\":\"value\"") != std::string::npos) {
        rows.push_back(line);
      } else if (line.find("\"type\":\"done\"") != std::string::npos) {
        done = true;
        break;
      } else if (line.find("\"type\":\"error\"") != std::string::npos) {
        ADD_FAILURE() << "unexpected error line: " << line;
        break;
      }
    }
    return rows;
  }

  fs::path dir_;
};

TEST_F(DaemonSoak, RandomizedKillRestartRoundsStayByteIdentical) {
  // Reference rows from one uninterrupted daemon life.
  const ChildProcess ref = start((dir_ / "ref").string());
  auto ch = connect();
  bool done = false;
  const std::vector<std::string> want = collect(*ch, kRank, done);
  ASSERT_TRUE(done);
  ASSERT_GT(want.size(), 100u);
  ASSERT_TRUE(ch->send("{\"op\":\"drain\"}"));
  EXPECT_EQ(util::reap(ref.pid).exit_code, 0);
  ch.reset();

  std::mt19937 rng(20260807u);
  const int rows = static_cast<int>(want.size());
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const std::string state = (dir_ / ("round" + std::to_string(round))).string();

    // Life 1: die at a randomized site while serving the live request.
    const int which = round % 3;
    if (which == 0) {
      faultinject::arm(faultinject::Site::kDaemonWrite,
                       std::uniform_int_distribution<int>(0, rows - 1)(rng), 1);
    } else if (which == 1) {
      faultinject::arm(faultinject::Site::kDaemonAckLost, 0, 1);
    } else {
      faultinject::arm(faultinject::Site::kDaemonRead, 0, 1);
    }
    ChildProcess child = start(state);
    ch = connect();
    std::vector<std::string> partial = collect(*ch, kRank, done);
    EXPECT_FALSE(done);
    for (std::size_t i = 0; i < partial.size(); ++i) {
      ASSERT_EQ(partial[i], want[i]) << "partial row " << i;
    }
    EXPECT_EQ(util::reap(child.pid).term_signal, SIGKILL);
    faultinject::disarm_all();

    // Life 2: kill again, this time during the headless restart-resume
    // (only the write site fires there -- for the read/ack rounds the
    // request either was never journaled or resumes instantly).
    if (which == 0 && partial.size() + 1 < want.size()) {
      faultinject::arm(faultinject::Site::kDaemonWrite,
                       std::uniform_int_distribution<int>(static_cast<int>(partial.size()),
                                                          rows - 1)(rng),
                       1);
      child = start(state);
      EXPECT_EQ(util::reap(child.pid).term_signal, SIGKILL);
      faultinject::disarm_all();
    }

    // Final life: reconnect, re-send, and require the full byte-identical
    // stream of the uninterrupted reference.
    child = start(state);
    ch = connect();
    const std::vector<std::string> got = collect(*ch, kRank, done);
    EXPECT_TRUE(done);
    EXPECT_EQ(got, want);
    ASSERT_TRUE(ch->send("{\"op\":\"drain\"}"));
    EXPECT_EQ(util::reap(child.pid).exit_code, 0);
    ch.reset();
  }
}

}  // namespace
}  // namespace mtcmos
