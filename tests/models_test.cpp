// Unit tests for mtcmos::models: level-1 MOSFET, technologies, alpha-power
// law, sleep-transistor resistance model.

#include <gtest/gtest.h>

#include <cmath>

#include "models/alpha_power.hpp"
#include "models/level1.hpp"
#include "models/sleep_transistor.hpp"
#include "models/technology.hpp"
#include "util/units.hpp"

namespace mtcmos {
namespace {

MosParams nmos_no_sub() {
  MosParams p = tech07().nmos_low;
  p.subthreshold = false;
  return p;
}

TEST(Level1, CutoffHasNoStrongInversionCurrent) {
  const MosParams p = nmos_no_sub();
  const MosEval e = mos_level1_eval(p, 2e-6, 0.7e-6, /*vgs=*/0.1, /*vds=*/1.0, 0.0);
  EXPECT_DOUBLE_EQ(e.id, 0.0);
}

TEST(Level1, SaturationSquareLaw) {
  MosParams p = nmos_no_sub();
  p.lambda = 0.0;
  const double w = 2e-6, l = 1e-6;
  const double vov = 0.5;
  const MosEval e = mos_level1_eval(p, w, l, p.vt0 + vov, /*vds=*/1.0, 0.0);
  EXPECT_NEAR(e.id, 0.5 * p.kp * (w / l) * vov * vov, 1e-15);
  EXPECT_NEAR(e.gm, p.kp * (w / l) * vov, 1e-12);
  EXPECT_NEAR(e.gds, 0.0, 1e-15);
}

TEST(Level1, TriodeRegion) {
  MosParams p = nmos_no_sub();
  p.lambda = 0.0;
  const double w = 2e-6, l = 1e-6;
  const double vov = 0.5, vds = 0.1;
  const MosEval e = mos_level1_eval(p, w, l, p.vt0 + vov, vds, 0.0);
  EXPECT_NEAR(e.id, p.kp * (w / l) * (vov * vds - 0.5 * vds * vds), 1e-15);
}

TEST(Level1, CurrentContinuousAtPinchoff) {
  MosParams p = nmos_no_sub();
  const double w = 2e-6, l = 1e-6, vov = 0.4;
  const double eps = 1e-7;
  const MosEval lin = mos_level1_eval(p, w, l, p.vt0 + vov, vov - eps, 0.0);
  const MosEval sat = mos_level1_eval(p, w, l, p.vt0 + vov, vov + eps, 0.0);
  // Continuous up to the 2*eps*gds slope term across the boundary.
  EXPECT_NEAR(lin.id, sat.id, 3.0 * eps * sat.gds + 1e-15);
}

TEST(Level1, BodyEffectRaisesThreshold) {
  const MosParams p = tech07().nmos_low;
  const double vt0 = threshold_voltage(p, 0.0);
  const double vt_biased = threshold_voltage(p, 0.3);
  EXPECT_DOUBLE_EQ(vt0, p.vt0);
  EXPECT_GT(vt_biased, vt0);
  // Analytical value.
  EXPECT_NEAR(vt_biased, p.vt0 + p.gamma * (std::sqrt(p.phi + 0.3) - std::sqrt(p.phi)), 1e-12);
}

TEST(Level1, BodyEffectReducesCurrent) {
  const MosParams p = nmos_no_sub();
  const double w = 2e-6, l = 1e-6;
  const MosEval grounded = mos_level1_eval(p, w, l, 0.9, 1.0, 0.0);
  const MosEval body_biased = mos_level1_eval(p, w, l, 0.9, 1.0, -0.3);  // vsb = +0.3
  EXPECT_LT(body_biased.id, grounded.id);
}

TEST(Level1, ChannelLengthModulationIncreasesIdWithVds) {
  const MosParams p = nmos_no_sub();
  const double w = 2e-6, l = 1e-6;
  const MosEval a = mos_level1_eval(p, w, l, 0.9, 0.8, 0.0);
  const MosEval b = mos_level1_eval(p, w, l, 0.9, 1.2, 0.0);
  EXPECT_GT(b.id, a.id);
  EXPECT_GT(a.gds, 0.0);
}

TEST(Level1, SubthresholdLeakageDecadesPerVt) {
  MosParams p = tech07().nmos_low;
  p.subthreshold = true;
  const double w = 2e-6, l = 0.7e-6;
  const MosEval low = mos_level1_eval(p, w, l, 0.0, 1.2, 0.0);
  MosParams hp = tech07().nmos_high;
  const MosEval high = mos_level1_eval(hp, w, l, 0.0, 1.2, 0.0);
  EXPECT_GT(low.id, 0.0);
  EXPECT_GT(high.id, 0.0);
  // 0.4 V higher threshold must suppress leakage by orders of magnitude:
  // exp(0.4 / (n vT)) ~ 6e4 at n=1.4.
  const double ratio = low.id / high.id;
  EXPECT_GT(ratio, 1e3);
  EXPECT_LT(ratio, 1e7);
}

TEST(Level1, LeakageGrowsWithTemperature) {
  MosParams p = tech07().nmos_low;
  p.temp = 300.0;
  const double i300 = mos_level1_eval(p, 2e-6, 0.7e-6, 0.0, 1.2, 0.0).id;
  p.temp = 360.0;
  const double i360 = mos_level1_eval(p, 2e-6, 0.7e-6, 0.0, 1.2, 0.0).id;
  EXPECT_GT(i360, 3.0 * i300);  // several octaves over 60 K
  // Strong inversion is (deliberately) temperature-independent in this model.
  p.temp = 300.0;
  const double s300 = mos_level1_eval(p, 2e-6, 0.7e-6, 1.2, 1.2, 0.0).id;
  p.temp = 360.0;
  const double s360 = mos_level1_eval(p, 2e-6, 0.7e-6, 1.2, 1.2, 0.0).id;
  EXPECT_NEAR(s360 / s300, 1.0, 0.01);
}

TEST(Level1, SubthresholdVanishesWithVds) {
  const MosParams p = tech07().nmos_low;
  const MosEval e = mos_level1_eval(p, 2e-6, 0.7e-6, 0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(e.id, 0.0);
}

TEST(Level1, InvalidArgsThrow) {
  const MosParams p = tech07().nmos_low;
  EXPECT_THROW(mos_level1_eval(p, -1e-6, 1e-6, 1.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(mos_level1_eval(p, 1e-6, 1e-6, 1.0, -0.1, 0.0), std::invalid_argument);
}

TEST(Level1, SaturationCurrentHelperMatchesEval) {
  MosParams p = nmos_no_sub();
  p.lambda = 0.0;
  const double wl = 3.0;
  const double i1 = saturation_current(p, wl, 1.2, 0.0);
  const MosEval e = mos_level1_eval(p, wl * 1e-6, 1e-6, 1.2, 2.0, 0.0);
  EXPECT_NEAR(i1, e.id, 1e-12);
  EXPECT_DOUBLE_EQ(saturation_current(p, wl, 0.2, 0.0), 0.0);  // below Vt
}

TEST(Technology, PresetsMatchPaperVoltages) {
  const Technology t7 = tech07();
  EXPECT_DOUBLE_EQ(t7.vdd, 1.2);
  EXPECT_DOUBLE_EQ(t7.nmos_low.vt0, 0.35);
  EXPECT_DOUBLE_EQ(t7.pmos_low.vt0, 0.35);
  EXPECT_DOUBLE_EQ(t7.nmos_high.vt0, 0.75);
  EXPECT_DOUBLE_EQ(t7.lmin, 0.7e-6);

  const Technology t3 = tech03();
  EXPECT_DOUBLE_EQ(t3.vdd, 1.0);
  EXPECT_DOUBLE_EQ(t3.nmos_low.vt0, 0.20);
  EXPECT_DOUBLE_EQ(t3.nmos_high.vt0, 0.70);
  EXPECT_DOUBLE_EQ(t3.lmin, 0.3e-6);
}

TEST(Technology, CapacitanceHelpers) {
  const Technology t = tech07();
  EXPECT_NEAR(t.gate_cap(2e-6, 0.7e-6), t.cox * 1.4e-12, 1e-20);
  EXPECT_NEAR(t.junction_cap(2e-6), t.cj_per_width * 2e-6, 1e-20);
  EXPECT_GT(Technology::beta(t.nmos_low, 2.1e-6, 0.7e-6), 0.0);
}

TEST(AlphaPower, SquareLawRecovery) {
  const AlphaPowerModel m{2.0, 59e-6, 0.35};  // k = kp/2 equivalent
  const double id = alpha_power_current(m, 3.0, 1.2);
  EXPECT_NEAR(id, 59e-6 * 3.0 * 0.85 * 0.85, 1e-12);
  EXPECT_DOUBLE_EQ(alpha_power_current(m, 3.0, 0.2), 0.0);
}

TEST(AlphaPower, DelayScalesInverselyWithGateDrive) {
  const AlphaPowerModel m{1.3, 1e-4, 0.35};
  const double d_high = alpha_power_delay(m, 3.0, 50e-15, 1.2);
  const double d_low = alpha_power_delay(m, 3.0, 50e-15, 0.8);
  EXPECT_GT(d_low, d_high);  // lower Vdd -> slower
}

TEST(AlphaPower, FitRecoversExactModel) {
  const AlphaPowerModel truth{1.4, 2.3e-4, 0.35};
  std::vector<double> vgs, id;
  for (double v = 0.6; v <= 1.3; v += 0.1) {
    vgs.push_back(v);
    id.push_back(alpha_power_current(truth, 2.0, v));
  }
  const AlphaPowerModel fit = fit_alpha_power(vgs, id, truth.vt, 2.0);
  EXPECT_NEAR(fit.alpha, truth.alpha, 1e-9);
  EXPECT_NEAR(fit.k, truth.k, 1e-9 * truth.k);
}

TEST(AlphaPower, FitLevel1DataGivesAlphaNearTwo) {
  // Level-1 is a square law, so the fitted alpha should be close to 2
  // (slightly above due to channel-length modulation at fixed vds).
  MosParams p = nmos_no_sub();
  p.lambda = 0.0;
  std::vector<double> vgs, id;
  for (double v = 0.6; v <= 1.21; v += 0.05) {
    vgs.push_back(v);
    id.push_back(saturation_current(p, 3.0, v, 0.0));
  }
  const AlphaPowerModel fit = fit_alpha_power(vgs, id, p.vt0, 3.0);
  EXPECT_NEAR(fit.alpha, 2.0, 1e-6);
}

TEST(AlphaPower, FitRejectsBadInput) {
  EXPECT_THROW(fit_alpha_power({1.0}, {1e-4}, 0.35, 1.0), std::invalid_argument);
  EXPECT_THROW(fit_alpha_power({0.3, 0.4}, {1e-4, 2e-4}, 0.35, 1.0), std::invalid_argument);
  EXPECT_THROW(fit_alpha_power({1.0, 1.0}, {1e-4, 1e-4}, 0.35, 1.0), std::invalid_argument);
}

TEST(SleepTransistor, ReffInverseInWl) {
  const Technology t = tech07();
  const SleepTransistor small(t, 5.0);
  const SleepTransistor large(t, 20.0);
  EXPECT_NEAR(small.reff() / large.reff(), 4.0, 1e-9);
}

TEST(SleepTransistor, ReffMatchesClosedForm) {
  const Technology t = tech03();
  const SleepTransistor s(t, 170.0);
  const double expected = 1.0 / (t.nmos_high.kp * 170.0 * (t.vdd - t.nmos_high.vt0));
  EXPECT_NEAR(s.reff(), expected, 1e-9 * expected);
  // Paper context: W/L = 170 in the 0.3 um process should be order 100 Ohm.
  EXPECT_GT(s.reff(), 10.0);
  EXPECT_LT(s.reff(), 1000.0);
}

TEST(SleepTransistor, ReffAtIncreasesWithVx) {
  const Technology t = tech07();
  const SleepTransistor s(t, 10.0);
  EXPECT_NEAR(s.reff_at(0.0), s.reff(), 1e-9 * s.reff());
  EXPECT_GT(s.reff_at(0.2), s.reff());
  EXPECT_GT(s.reff_at(0.4), s.reff_at(0.2));
}

TEST(SleepTransistor, WlForResistanceRoundTrip) {
  const Technology t = tech07();
  const double wl = SleepTransistor::wl_for_resistance(t, 500.0);
  const SleepTransistor s(t, wl);
  EXPECT_NEAR(s.reff(), 500.0, 1e-9 * 500.0);
}

TEST(SleepTransistor, WidthIsWlTimesLmin) {
  const Technology t = tech07();
  const SleepTransistor s(t, 12.0);
  EXPECT_NEAR(s.width(), 12.0 * t.lmin, 1e-18);
}

TEST(SleepTransistor, RejectsBadArguments) {
  const Technology t = tech07();
  EXPECT_THROW(SleepTransistor(t, 0.0), std::invalid_argument);
  EXPECT_THROW(SleepTransistor::wl_for_resistance(t, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace mtcmos
