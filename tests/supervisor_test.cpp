// Sharded sweep supervisor: shard planning, the worker line protocol,
// deterministic process-level fault injection (SIGKILL, abort, stalled
// heartbeat, torn journal tail), restart/backoff, poisoned-item
// quarantine, cancellation drain, and the journal merge -- all asserted
// against the single-process result, which the merged run must match
// bit for bit.
//
// These tests fork real worker processes, so they carry the
// `faultinject` ctest label rather than `tsan`: ThreadSanitizer cannot
// follow threads started after a multi-threaded fork.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "circuits/generators.hpp"
#include "sizing/checkpoint.hpp"
#include "sizing/session.hpp"
#include "sizing/sizing.hpp"
#include "sizing/supervisor.hpp"
#include "util/cancel.hpp"
#include "util/faultinject.hpp"
#include "util/subprocess.hpp"

namespace mtcmos {
namespace {

using sizing::Checkpoint;
using sizing::EvalSession;
using sizing::ShardedRankResult;
using sizing::SupervisorOptions;
using sizing::VbsBackend;
using sizing::VectorDelay;
using sizing::VectorPair;

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("supervisor_test." +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "." +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    faultinject::disarm_all();
    std::filesystem::remove_all(dir_);
  }

  SupervisorOptions fast_options(int shards) const {
    SupervisorOptions o;
    o.shards = shards;
    o.dir = (dir_ / "shards").string();
    o.heartbeat_interval_s = 0.01;
    o.backoff_initial_s = 0.01;
    o.backoff_max_s = 0.05;
    return o;
  }

  std::filesystem::path dir_;
};

std::vector<std::string> adder_outputs(const circuits::RippleAdder& adder) {
  std::vector<std::string> outs;
  for (const auto s : adder.sum) outs.push_back(adder.netlist.net_name(s));
  outs.push_back(adder.netlist.net_name(adder.cout));
  return outs;
}

void expect_rank_identical(const std::vector<VectorDelay>& got,
                           const std::vector<VectorDelay>& want, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].pair.v0, want[i].pair.v0) << what << " item " << i;
    EXPECT_EQ(got[i].pair.v1, want[i].pair.v1) << what << " item " << i;
    EXPECT_EQ(got[i].delay_cmos, want[i].delay_cmos) << what << " item " << i;
    EXPECT_EQ(got[i].delay_mtcmos, want[i].delay_mtcmos) << what << " item " << i;
    EXPECT_EQ(got[i].degradation_pct, want[i].degradation_pct) << what << " item " << i;
  }
}

TEST(PlanShards, ContiguousNearEqualCoverage) {
  const auto shards = sizing::plan_shards(10, 3);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0], (std::pair<std::size_t, std::size_t>{0, 4}));
  EXPECT_EQ(shards[1], (std::pair<std::size_t, std::size_t>{4, 7}));
  EXPECT_EQ(shards[2], (std::pair<std::size_t, std::size_t>{7, 10}));
}

TEST(PlanShards, MoreShardsThanItemsCollapses) {
  const auto shards = sizing::plan_shards(2, 8);
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0], (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(shards[1], (std::pair<std::size_t, std::size_t>{1, 2}));
}

TEST(PlanShards, EmptyAndDegenerate) {
  EXPECT_TRUE(sizing::plan_shards(0, 4).empty());
  const auto one = sizing::plan_shards(5, 0);  // shards < 1 clamps to 1
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], (std::pair<std::size_t, std::size_t>{0, 5}));
}

TEST(FaultinjectGeneration, PlansPinnedToAGenerationFireOnlyThere) {
  faultinject::disarm_all();
  faultinject::arm_generation(faultinject::Site::kWorkerKill, faultinject::kAnyScope,
                              /*generation=*/1, /*fail_hits=*/1);
  faultinject::set_generation(0);
  EXPECT_FALSE(faultinject::fired(faultinject::Site::kWorkerKill));
  faultinject::set_generation(1);
  EXPECT_TRUE(faultinject::fired(faultinject::Site::kWorkerKill));
  EXPECT_FALSE(faultinject::fired(faultinject::Site::kWorkerKill)) << "hit must be consumed";
  faultinject::disarm_all();
  EXPECT_EQ(faultinject::generation(), 0) << "disarm_all resets the generation";
}

TEST(FaultinjectGeneration, FiredIsScopedLikeCheck) {
  faultinject::disarm_all();
  faultinject::arm_generation(faultinject::Site::kWorkerAbort, /*scope=*/7,
                              faultinject::kAnyGeneration, /*fail_hits=*/1);
  {
    const faultinject::ScopedScope scope(3);
    EXPECT_FALSE(faultinject::fired(faultinject::Site::kWorkerAbort));
  }
  {
    const faultinject::ScopedScope scope(7);
    EXPECT_TRUE(faultinject::fired(faultinject::Site::kWorkerAbort));
  }
  faultinject::disarm_all();
}

TEST(Subprocess, SpawnLineProtocolAndReap) {
  const util::ChildProcess child = util::spawn_child([](int wfd) {
    if (!util::write_line(wfd, "hello")) return 9;
    if (!util::write_line(wfd, "world")) return 9;
    return 42;
  });
  ASSERT_GT(child.pid, 0);
  const util::ExitStatus st = util::reap(child.pid);
  EXPECT_TRUE(st.exited);
  EXPECT_FALSE(st.signaled);
  EXPECT_EQ(st.exit_code, 42);
  util::LineReader reader(child.pipe_fd);
  std::vector<std::string> lines;
  while (reader.poll(lines)) {
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "hello");
  EXPECT_EQ(lines[1], "world");
  util::close_fd(child.pipe_fd);
}

TEST_F(SupervisorTest, NoFaultShardedRankMatchesSingleProcess) {
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);
  const auto reference = sizing::rank_vectors(vbs, vectors, 10.0);

  const ShardedRankResult sharded =
      sizing::sharded_rank_vectors(vbs, vectors, 10.0, fast_options(3));
  EXPECT_EQ(sharded.stats.workers_spawned, 3);
  EXPECT_EQ(sharded.stats.restarts, 0);
  EXPECT_EQ(sharded.stats.quarantined, 0u);
  EXPECT_EQ(sharded.stats.abandoned, 0u);
  EXPECT_FALSE(sharded.stats.cancelled);
  EXPECT_EQ(sharded.report.failed, 0u);
  EXPECT_EQ(sharded.report.total, vectors.size());
  expect_rank_identical(sharded.ranked, reference, "3 shards, no faults");
}

TEST_F(SupervisorTest, SigkilledWorkerRestartsAndMergesBitIdentically) {
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);
  const auto reference = sizing::rank_vectors(vbs, vectors, 10.0);

  // Kill the worker that reaches item 5, on that item's first attempt
  // only: the restarted worker (strike count 1 -> generation 1) must not
  // match the generation-0 plan it re-inherits at fork.
  faultinject::arm_generation(faultinject::Site::kWorkerKill, /*scope=*/5, /*generation=*/0,
                              /*fail_hits=*/1);
  const ShardedRankResult sharded =
      sizing::sharded_rank_vectors(vbs, vectors, 10.0, fast_options(3));
  EXPECT_GE(sharded.stats.restarts, 1);
  EXPECT_EQ(sharded.stats.quarantined, 0u);
  EXPECT_EQ(sharded.report.failed, 0u);
  expect_rank_identical(sharded.ranked, reference, "SIGKILL at item 5");
}

TEST_F(SupervisorTest, AbortedWorkerRestartsAndMergesBitIdentically) {
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);
  const auto reference = sizing::rank_vectors(vbs, vectors, 10.0);

  faultinject::arm_generation(faultinject::Site::kWorkerAbort, /*scope=*/3, /*generation=*/0,
                              /*fail_hits=*/1);
  const ShardedRankResult sharded =
      sizing::sharded_rank_vectors(vbs, vectors, 10.0, fast_options(2));
  EXPECT_GE(sharded.stats.restarts, 1);
  EXPECT_EQ(sharded.stats.quarantined, 0u);
  EXPECT_EQ(sharded.report.failed, 0u);
  expect_rank_identical(sharded.ranked, reference, "abort at item 3");
}

TEST_F(SupervisorTest, TornJournalTailIsTruncatedOnRestart) {
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);
  const auto reference = sizing::rank_vectors(vbs, vectors, 10.0);

  // The worker appends half a record to its shard journal, then SIGKILLs
  // itself: the restart's replay must truncate the torn tail and re-run
  // only the unjournaled items.
  faultinject::arm_generation(faultinject::Site::kWorkerTornTail, /*scope=*/9,
                              /*generation=*/0, /*fail_hits=*/1);
  const ShardedRankResult sharded =
      sizing::sharded_rank_vectors(vbs, vectors, 10.0, fast_options(3));
  EXPECT_GE(sharded.stats.restarts, 1);
  EXPECT_EQ(sharded.report.failed, 0u);
  expect_rank_identical(sharded.ranked, reference, "torn tail at item 9");
}

TEST_F(SupervisorTest, StalledWorkerIsKilledByLivenessTimeoutAndRestarted) {
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);
  const auto reference = sizing::rank_vectors(vbs, vectors, 10.0);

  faultinject::arm_generation(faultinject::Site::kWorkerStall, /*scope=*/2, /*generation=*/0,
                              /*fail_hits=*/1);
  SupervisorOptions options = fast_options(2);
  options.liveness_timeout_s = 0.3;  // the stalled worker goes silent; kill it fast
  const ShardedRankResult sharded = sizing::sharded_rank_vectors(vbs, vectors, 10.0, options);
  EXPECT_GE(sharded.stats.stall_kills, 1);
  EXPECT_GE(sharded.stats.restarts, 1);
  EXPECT_EQ(sharded.stats.quarantined, 0u);
  EXPECT_EQ(sharded.report.failed, 0u);
  expect_rank_identical(sharded.ranked, reference, "stall at item 2");
}

TEST_F(SupervisorTest, DeterministicKillerIsQuarantinedNotLooped) {
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);
  const std::size_t killer = 6;
  // The contract is bit-identity with a single-process run in which the
  // quarantined item fails -- i.e. a rank over the input list minus the
  // killer.  (Filtering the killer out of a full-list ranking is NOT
  // equivalent: rank_vectors' sort is unstable on degradation ties, so
  // tie order depends on the sequence fed to the sort.)
  std::vector<VectorPair> pruned = vectors;
  pruned.erase(pruned.begin() + static_cast<std::ptrdiff_t>(killer));
  const auto expected = sizing::rank_vectors(vbs, pruned, 10.0);

  // Item 6 kills its worker on the first attempt (generation 0) and on
  // the restart (generation 1): two strikes = quarantine under the
  // default poison_strikes.
  faultinject::arm_generation(faultinject::Site::kWorkerKill, static_cast<std::int64_t>(killer),
                              /*generation=*/0, /*fail_hits=*/1);
  faultinject::arm_generation(faultinject::Site::kWorkerKill, static_cast<std::int64_t>(killer),
                              /*generation=*/1, /*fail_hits=*/1);

  Checkpoint merged;
  merged.open((dir_ / "merged.mtj").string());
  const ShardedRankResult sharded =
      sizing::sharded_rank_vectors(vbs, vectors, 10.0, fast_options(3), &merged);
  EXPECT_EQ(sharded.stats.quarantined, 1u);
  ASSERT_EQ(sharded.report.failed, 1u);
  EXPECT_EQ(sharded.report.failures[0].first, killer);
  EXPECT_EQ(sharded.report.failures[0].second.code, FailureCode::kPoisonedItem);
  EXPECT_EQ(sharded.report.failures[0].second.site, "sizing::supervisor");
  expect_rank_identical(sharded.ranked, expected, "quarantined killer");

  // The quarantine is durable: a fresh in-process pass over the merged
  // journal replays the kPoisonedItem failure without executing the item
  // (the armed kill plans would fire if anything re-ran it in-process --
  // fired() is only consulted by workers, and no worker runs here).
  SweepReport replay_report;
  EvalSession session;
  session.checkpoint = &merged;
  session.report = &replay_report;
  const auto replayed = sizing::rank_vectors(vbs, vectors, 10.0, session);
  ASSERT_EQ(replay_report.failed, 1u);
  EXPECT_EQ(replay_report.failures[0].second.code, FailureCode::kPoisonedItem);
  expect_rank_identical(replayed, expected, "replay after quarantine");
}

TEST_F(SupervisorTest, CancellationDrainsWorkersGracefully) {
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);

  util::CancelToken token;
  token.request();  // cancelled before supervision starts
  SupervisorOptions options = fast_options(2);
  options.cancel_token = &token;
  const ShardedRankResult sharded = sizing::sharded_rank_vectors(vbs, vectors, 10.0, options);
  EXPECT_TRUE(sharded.stats.cancelled);
  EXPECT_EQ(sharded.stats.quarantined, 0u);
  // The final pass classifies unjournaled items as kCancelled; whatever
  // the workers journaled before draining replays normally.
  EXPECT_EQ(sharded.report.total, vectors.size());
  for (const auto& [index, info] : sharded.report.failures) {
    (void)index;
    EXPECT_EQ(info.code, FailureCode::kCancelled);
  }
}

TEST_F(SupervisorTest, MergedJournalDropsHeartbeatRecords) {
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);

  Checkpoint merged;
  merged.open((dir_ / "merged.mtj").string());
  (void)sizing::sharded_rank_vectors(vbs, vectors, 10.0, fast_options(2), &merged);
  std::size_t heartbeat_keys = 0;
  merged.journal().for_each([&](const std::string& key, const std::string&) {
    if (key.rfind("hb:", 0) == 0) ++heartbeat_keys;
  });
  EXPECT_EQ(heartbeat_keys, 0u);
  // The shard journals themselves DO hold heartbeat breadcrumbs.
  bool shard_has_heartbeat = false;
  for (int s = 0; s < 2; ++s) {
    util::Journal shard;
    shard.open((dir_ / "shards" / ("shard" + std::to_string(s) + ".mtj")).string());
    shard.for_each([&](const std::string& key, const std::string&) {
      if (key.rfind("hb:", 0) == 0) shard_has_heartbeat = true;
    });
  }
  EXPECT_TRUE(shard_has_heartbeat);
}

TEST_F(SupervisorTest, ResumingAMergedCampaignSkipsAllWork) {
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);
  const auto reference = sizing::rank_vectors(vbs, vectors, 10.0);

  const std::string merged_path = (dir_ / "merged.mtj").string();
  {
    Checkpoint merged;
    merged.open(merged_path);
    (void)sizing::sharded_rank_vectors(vbs, vectors, 10.0, fast_options(3), &merged);
  }
  // A second sharded run against the same merged journal finds every item
  // journaled: workers spawn, replay, and exit without re-simulating.
  Checkpoint merged;
  merged.open(merged_path);
  const std::size_t before = merged.journal().size();
  const ShardedRankResult again =
      sizing::sharded_rank_vectors(vbs, vectors, 10.0, fast_options(3), &merged);
  EXPECT_EQ(merged.journal().size(), before);
  EXPECT_EQ(again.report.failed, 0u);
  expect_rank_identical(again.ranked, reference, "resumed campaign");
}

}  // namespace
}  // namespace mtcmos
