// Campaign crash/resume soak: a mid-size corner-crossed campaign is
// interrupted at randomized points over and over until it completes,
// then re-run sharded -- every path must converge to a characterization
// table byte-identical to the uninterrupted reference.  Registered under
// the `soak` ctest configuration (see tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>

#include "sizing/campaign.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace mtcmos {
namespace {

using sizing::CampaignDriver;
using sizing::CampaignSpec;
using sizing::CampaignStats;

const char* kSoakSpec = R"({
  "circuit": "builtin:mult3",
  "target_pct": 8.0,
  "wl_grid": [15, 60],
  "corners": [
    { "name": "nominal" },
    { "name": "slow", "vdd_scale": 0.95, "vt_low_shift": 0.02, "temp": 358.15 },
    { "name": "hot",  "kp_scale": 0.9, "temp": 398.15 }
  ],
  "chunk": 256
})";

std::string table_of(CampaignDriver& driver) {
  std::ostringstream os;
  driver.write_table(os);
  return os.str();
}

TEST(CampaignSoak, RandomizedInterruptionsAndShardsConverge) {
  const auto spec = CampaignSpec::parse(kSoakSpec);
  const auto root = std::filesystem::temp_directory_path() /
                    ("campaign_soak." +
                     std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);

  CampaignDriver reference(spec, (root / "reference").string(), false);
  const CampaignStats ref_stats = reference.run();
  ASSERT_TRUE(ref_stats.complete);
  const std::string expected = table_of(reference);
  const std::size_t n_chunks = reference.n_chunks();

  // Kill-and-resume rounds: cancel after a random delay, resume, repeat
  // until the campaign completes.  Every prefix of journaled chunks must
  // extend to the same table.
  Rng rng(static_cast<std::uint64_t>(::testing::UnitTest::GetInstance()->random_seed()) + 1);
  const std::string dir = (root / "interrupted").string();
  int rounds = 0;
  bool fresh = true;
  while (true) {
    ++rounds;
    ASSERT_LE(rounds, 500) << "campaign made no progress across resume rounds";
    util::CancelToken token;
    CampaignDriver driver(spec, dir, !fresh);
    fresh = false;
    const auto delay_us = rng.uniform_int(0, 30000);
    std::thread canceller([&token, delay_us] {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      token.request();
    });
    const CampaignStats stats = driver.run(1, nullptr, &token);
    canceller.join();
    EXPECT_EQ(stats.chunks_replayed + stats.chunks_run, driver.chunks_done());
    if (driver.complete()) {
      EXPECT_EQ(table_of(driver), expected) << "after " << rounds << " interrupted rounds";
      break;
    }
  }
  SUCCEED() << "converged after " << rounds << " rounds over " << n_chunks << " chunks";

  // Sharded convergence: four supervised worker processes.
  CampaignDriver sharded(spec, (root / "sharded").string(), false);
  const CampaignStats sstats = sharded.run(4);
  ASSERT_TRUE(sstats.complete);
  EXPECT_EQ(sstats.chunks_poisoned, 0u);
  EXPECT_EQ(table_of(sharded), expected);

  // And interrupting a *sharded* run, then resuming sharded, converges
  // too: worker shard stores merge across the restart boundary.
  {
    util::CancelToken token;
    CampaignDriver driver(spec, (root / "sharded_killed").string(), false);
    std::thread canceller([&token] {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      token.request();
    });
    driver.run(3, nullptr, &token);
    canceller.join();
  }
  CampaignDriver resumed(spec, (root / "sharded_killed").string(), true);
  const CampaignStats rstats = resumed.run(3);
  ASSERT_TRUE(rstats.complete);
  EXPECT_EQ(table_of(resumed), expected);

  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace mtcmos
