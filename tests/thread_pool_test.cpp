#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mtcmos::util {
namespace {

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, FewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelMapIsIndexAddressed) {
  ThreadPool pool(4);
  const auto out = pool.parallel_map(1000, [](std::size_t i) { return 3.0 * static_cast<double>(i); });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3.0 * static_cast<double>(i));
}

TEST(ThreadPoolTest, ExceptionPropagatesFromWorker) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionPropagatesSerially) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::invalid_argument("bad");
                                 }),
               std::invalid_argument);
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(8, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, ExceptionCancelsRemainingIterations) {
  // Once index 0 throws, indices that have not yet started must be
  // skipped.  Each non-throwing iteration sleeps, so the job would take
  // many seconds if the pool kept draining all 10000 indices.
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.parallel_for(10000,
                        [&](std::size_t i) {
                          if (i == 0) throw std::runtime_error("first");
                          executed.fetch_add(1);
                          std::this_thread::sleep_for(std::chrono::milliseconds(1));
                        }),
      std::runtime_error);
  // A few in-flight iterations may finish after the throw; anything close
  // to the full range means cancellation did not happen.
  EXPECT_LT(executed.load(), 100);
}

TEST(ThreadPoolTest, CollectRunsEveryIndexDespiteFailures) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(512);
  const auto errors = pool.parallel_for_collect(512, [&](std::size_t i) {
    hits[i].fetch_add(1);
    if (i % 7 == 0) throw std::runtime_error("item " + std::to_string(i));
  });
  ASSERT_EQ(errors.size(), 512u);
  for (std::size_t i = 0; i < 512; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    if (i % 7 == 0) {
      ASSERT_TRUE(errors[i]) << "index " << i;
      try {
        std::rethrow_exception(errors[i]);
      } catch (const std::runtime_error& e) {
        EXPECT_EQ(std::string(e.what()), "item " + std::to_string(i));
      }
    } else {
      EXPECT_FALSE(errors[i]) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, CollectSerialPool) {
  ThreadPool pool(1);
  const auto errors = pool.parallel_for_collect(10, [](std::size_t i) {
    if (i == 4) throw std::invalid_argument("four");
  });
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(static_cast<bool>(errors[i]), i == 4);
}

TEST(ThreadPoolTest, BackToBackJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(64, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 64);
  }
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvVar) {
  ASSERT_EQ(setenv("MTCMOS_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3);
  ASSERT_EQ(setenv("MTCMOS_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);  // falls back to hardware
  ASSERT_EQ(setenv("MTCMOS_THREADS", "0", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);  // non-positive ignored
  ASSERT_EQ(unsetenv("MTCMOS_THREADS"), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
}

}  // namespace
}  // namespace mtcmos::util
