// The parallel sweep engine's core guarantee: for any thread count, every
// sweep entry point produces results bit-identical to the serial path.
// Parallelism only distributes independent simulator runs across index-
// addressed slots; reductions and sorts stay serial, so there is no
// floating-point reassociation to drift.  These tests run the 3-bit adder
// workflows on 1 thread and on several threads and require exact
// (bit-level) equality.  Built with -fsanitize=thread (MTCMOS_SANITIZE)
// they also check the shared-simulator concurrency claim: ctest -L tsan.

#include <gtest/gtest.h>

#include <vector>

#include "circuits/generators.hpp"
#include "core/vbs.hpp"
#include "models/technology.hpp"
#include "sizing/sizing.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mtcmos::sizing {
namespace {

std::vector<std::string> adder_outputs(const circuits::RippleAdder& adder) {
  std::vector<std::string> outs;
  for (const auto s : adder.sum) outs.push_back(adder.netlist.net_name(s));
  outs.push_back(adder.netlist.net_name(adder.cout));
  return outs;
}

// Every 8th pair of the 4096-pair space: enough coverage to exercise the
// pool while keeping the tsan build fast.
std::vector<VectorPair> adder_pairs() {
  const auto all = all_vector_pairs(6);
  std::vector<VectorPair> subset;
  for (std::size_t i = 0; i < all.size(); i += 8) subset.push_back(all[i]);
  return subset;
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  ParallelDeterminismTest()
      : adder_(circuits::make_ripple_adder(tech07(), 3)),
        eval_(adder_.netlist, adder_outputs(adder_)),
        serial_(1),
        parallel_(4) {}

  circuits::RippleAdder adder_;
  DelayEvaluator eval_;
  util::ThreadPool serial_;
  util::ThreadPool parallel_;
};

TEST_F(ParallelDeterminismTest, RankVectorsBitIdentical) {
  const auto pairs = adder_pairs();
  const auto ranked_serial = rank_vectors(eval_, pairs, 8.0, &serial_);
  const auto ranked_parallel = rank_vectors(eval_, pairs, 8.0, &parallel_);
  ASSERT_EQ(ranked_serial.size(), ranked_parallel.size());
  for (std::size_t i = 0; i < ranked_serial.size(); ++i) {
    EXPECT_EQ(ranked_serial[i].pair.v0, ranked_parallel[i].pair.v0) << "rank " << i;
    EXPECT_EQ(ranked_serial[i].pair.v1, ranked_parallel[i].pair.v1) << "rank " << i;
    EXPECT_EQ(ranked_serial[i].delay_cmos, ranked_parallel[i].delay_cmos) << "rank " << i;
    EXPECT_EQ(ranked_serial[i].delay_mtcmos, ranked_parallel[i].delay_mtcmos) << "rank " << i;
    EXPECT_EQ(ranked_serial[i].degradation_pct, ranked_parallel[i].degradation_pct)
        << "rank " << i;
  }
}

TEST_F(ParallelDeterminismTest, SizeForDegradationBitIdentical) {
  std::vector<VectorPair> stress;
  const auto pairs = adder_pairs();
  for (std::size_t i = 0; i < pairs.size(); i += 20) stress.push_back(pairs[i]);
  const SizingResult a = size_for_degradation(eval_, stress, 5.0, 1.0, 2000.0, 0.5, &serial_);
  const SizingResult b = size_for_degradation(eval_, stress, 5.0, 1.0, 2000.0, 0.5, &parallel_);
  EXPECT_EQ(a.wl, b.wl);
  EXPECT_EQ(a.degradation_pct, b.degradation_pct);
  EXPECT_EQ(a.binding_vector.v0, b.binding_vector.v0);
  EXPECT_EQ(a.binding_vector.v1, b.binding_vector.v1);
}

TEST_F(ParallelDeterminismTest, SearchWorstVectorBitIdentical) {
  Rng rng_a(42), rng_b(42);
  const VectorDelay a = search_worst_vector(eval_, 8.0, 40, rng_a, &serial_);
  const VectorDelay b = search_worst_vector(eval_, 8.0, 40, rng_b, &parallel_);
  EXPECT_EQ(a.pair.v0, b.pair.v0);
  EXPECT_EQ(a.pair.v1, b.pair.v1);
  EXPECT_EQ(a.delay_cmos, b.delay_cmos);
  EXPECT_EQ(a.delay_mtcmos, b.delay_mtcmos);
  EXPECT_EQ(a.degradation_pct, b.degradation_pct);
}

TEST_F(ParallelDeterminismTest, ScreenVectorsBitIdentical) {
  const auto pairs = adder_pairs();
  const auto a = screen_vectors(adder_.netlist, pairs, 25, &serial_);
  const auto b = screen_vectors(adder_.netlist, pairs, 25, &parallel_);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].v0, b[i].v0) << "kept " << i;
    EXPECT_EQ(a[i].v1, b[i].v1) << "kept " << i;
  }
}

// The memoized CMOS baseline must return the same value hot and cold, and
// a shared simulator hammered from many threads at the same W/L must not
// race (the tsan build verifies the absence of data races here).
TEST_F(ParallelDeterminismTest, SharedSimulatorConcurrentRuns) {
  const auto pairs = adder_pairs();
  std::vector<double> cold(pairs.size());
  parallel_.parallel_for(pairs.size(), [&](std::size_t i) {
    cold[i] = eval_.degradation_pct(pairs[i], 8.0);
  });
  std::vector<double> hot(pairs.size());
  parallel_.parallel_for(pairs.size(), [&](std::size_t i) {
    hot[i] = eval_.degradation_pct(pairs[i], 8.0);
  });
  EXPECT_EQ(cold, hot);
}

}  // namespace
}  // namespace mtcmos::sizing
