// Tests for the cell-table static timing analyzer.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "core/vbs.hpp"
#include "models/technology.hpp"
#include "netlist/netlist.hpp"
#include "sizing/sta.hpp"
#include "util/units.hpp"

namespace mtcmos::sizing {
namespace {

using netlist::NetId;
using netlist::Netlist;
using mtcmos::units::fF;
using mtcmos::units::ps;

StaOptions quick_options() {
  StaOptions opt;
  opt.slews = {30.0 * ps, 120.0 * ps, 350.0 * ps};
  opt.loads = {10.0 * fF, 40.0 * fF, 120.0 * fF};
  return opt;
}

TEST(Sta, ChainArrivalsAccumulate) {
  const auto chain = circuits::make_inverter_chain(tech07(), 4);
  const StaEngine sta(chain.netlist, quick_options());
  const auto res = sta.analyze();
  double prev = 0.0;
  for (const auto out : chain.outputs) {
    const double a = res.arrival(out);
    EXPECT_GT(a, prev);
    prev = a;
  }
  // One characterized arc serves all four identical inverters.
  EXPECT_EQ(sta.arc_count(), 1u);
}

TEST(Sta, WorstNetIsTheDeepestOutput) {
  const auto chain = circuits::make_inverter_chain(tech07(), 4);
  const StaEngine sta(chain.netlist, quick_options());
  const auto res = sta.analyze();
  EXPECT_EQ(res.worst_net, chain.outputs.back());
}

TEST(Sta, NegativeUnateEdgePropagation) {
  // Single inverter: a rising input can only produce a falling output.
  Netlist nl(tech07());
  const NetId in = nl.add_input("a");
  const NetId out = nl.add_inv("inv", in);
  nl.add_load(out, 20.0 * fF);
  const StaEngine sta(nl, quick_options());
  const auto res = sta.analyze();
  EXPECT_GE(res.arrival_fall[static_cast<std::size_t>(out)], 0.0);
  EXPECT_GE(res.arrival_rise[static_cast<std::size_t>(out)], 0.0);  // from input fall
  EXPECT_GT(res.arrival(out), 0.0);
}

TEST(Sta, LargerLoadIncreasesArrival) {
  auto build = [](double load) {
    Netlist nl(tech07());
    const NetId in = nl.add_input("a");
    const NetId out = nl.add_inv("inv", in);
    nl.add_load(out, load);
    return nl;
  };
  const Netlist small = build(15.0 * fF);
  const Netlist big = build(100.0 * fF);
  const auto ra = StaEngine(small, quick_options()).analyze();
  const auto rb = StaEngine(big, quick_options()).analyze();
  EXPECT_GT(rb.worst_arrival, ra.worst_arrival);
}

TEST(Sta, DeratedTablesSlowerThanPlain) {
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  StaOptions plain = quick_options();
  StaOptions derated = quick_options();
  derated.ground = netlist::ExpandOptions::Ground::kSleepFet;
  derated.sleep_wl = 8.0;
  const auto rp = StaEngine(adder.netlist, plain).analyze();
  const auto rd = StaEngine(adder.netlist, derated).analyze();
  EXPECT_GT(rd.worst_arrival, rp.worst_arrival * 1.05);
}

TEST(Sta, AdderStaBoundsTypicalVectorDelays) {
  // STA's worst arrival must be at least the delay of a typical single
  // vector measured by the switch-level simulator at ideal ground.
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  const StaEngine sta(adder.netlist, quick_options());
  const auto res = sta.analyze();
  std::vector<std::string> outs;
  for (const auto s : adder.sum) outs.push_back(adder.netlist.net_name(s));
  const core::VbsSimulator vbs(adder.netlist, {});
  const double d = vbs.critical_delay({false, false, false, false}, {true, false, false, true},
                                      outs);
  ASSERT_GT(d, 0.0);
  EXPECT_GT(res.worst_arrival, 0.8 * d);
}

TEST(Sta, ArcCacheDeduplicatesIdenticalCells) {
  // The 2-bit adder has 2 identical mirror FAs: carry gate, sum gate and
  // two inverters, each with <= #pins arcs -- far fewer tables than
  // gates x pins.
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  const StaEngine sta(adder.netlist, quick_options());
  int total_pins = 0;
  for (const auto& g : adder.netlist.gates()) total_pins += static_cast<int>(g.fanins.size());
  EXPECT_LT(static_cast<int>(sta.arc_count()), total_pins);
  EXPECT_GE(sta.arc_count(), 4u);
}

}  // namespace
}  // namespace mtcmos::sizing
