// Parameterized property suites: invariants checked across swept
// parameter grids and seeded random instances.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "circuits/generators.hpp"
#include "core/vbs.hpp"
#include "core/vx_solver.hpp"
#include "models/level1.hpp"
#include "models/sleep_transistor.hpp"
#include "models/technology.hpp"
#include "netlist/bits.hpp"
#include "netlist/expand.hpp"
#include "netlist/io.hpp"
#include "spice/engine.hpp"
#include "util/dense_matrix.hpp"
#include "util/rng.hpp"
#include "util/sparse_lu.hpp"
#include "util/units.hpp"

namespace mtcmos {
namespace {

using netlist::bits_from_uint;
using netlist::concat_bits;
using units::fF;

// ---------------------------------------------------------------------------
// Vx solver: Eq. 5 must hold across (R, beta_total, alpha, body-effect).

class VxSolverProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double, bool>> {};

TEST_P(VxSolverProperty, SatisfiesEquationAndBounds) {
  const auto [r, beta, alpha, body] = GetParam();
  const Technology t = tech07();
  const core::VxSolution sol = core::solve_vx(r, t.vdd, t.nmos_low, beta, body, alpha);

  EXPECT_GE(sol.vx, 0.0);
  EXPECT_GE(sol.gate_drive, 0.0);
  EXPECT_LE(sol.vx + sol.gate_drive + sol.vtn, t.vdd + 1e-9);
  EXPECT_GE(sol.vtn, t.nmos_low.vt0 - 1e-12);  // body effect only raises Vt

  if (r > 0.0 && beta > 0.0) {
    // Residual of Eq. 5 (generalized current law).
    const double i = 0.5 * beta * std::pow(sol.gate_drive, alpha);
    EXPECT_NEAR(sol.vx / r, i, 1e-6 * std::max(i, 1e-12));
    EXPECT_NEAR(sol.total_current, i, 1e-9 * std::max(i, 1e-12));
  } else {
    EXPECT_DOUBLE_EQ(sol.vx, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, VxSolverProperty,
    ::testing::Combine(::testing::Values(0.0, 100.0, 1000.0, 10000.0),
                       ::testing::Values(1e-5, 1e-4, 1e-3, 1e-2),
                       ::testing::Values(1.0, 1.3, 1.7, 2.0),
                       ::testing::Bool()));

// ---------------------------------------------------------------------------
// Level-1 model: derivative consistency (analytic gm/gds/gmbs vs finite
// differences) across operating regions.

class Level1DerivativeProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(Level1DerivativeProperty, AnalyticDerivativesMatchFiniteDifference) {
  const auto [vgs, vds, vbs] = GetParam();
  const MosParams p = tech07().nmos_low;
  const double w = 2.1e-6, l = 0.7e-6;
  const double h = 1e-7;

  const MosEval e = mos_level1_eval(p, w, l, vgs, vds, vbs);
  EXPECT_GE(e.id, 0.0);
  EXPECT_GE(e.gds, 0.0);

  const double gm_fd = (mos_level1_eval(p, w, l, vgs + h, vds, vbs).id -
                        mos_level1_eval(p, w, l, vgs - h, vds, vbs).id) /
                       (2.0 * h);
  const double gds_fd = (mos_level1_eval(p, w, l, vgs, vds + h, vbs).id -
                         mos_level1_eval(p, w, l, vgs, vds - h, vbs).id) /
                        (2.0 * h);
  const double gmbs_fd = (mos_level1_eval(p, w, l, vgs, vds, vbs + h).id -
                          mos_level1_eval(p, w, l, vgs, vds, vbs - h).id) /
                         (2.0 * h);
  // The model has region-boundary kinks; the chosen grid stays off the
  // exact boundaries, where the analytic derivatives must match closely.
  const double tol = 1e-3 * std::max({std::abs(e.gm), std::abs(e.gds), 1e-9});
  EXPECT_NEAR(e.gm, gm_fd, tol) << "vgs=" << vgs << " vds=" << vds;
  EXPECT_NEAR(e.gds, gds_fd, tol) << "vgs=" << vgs << " vds=" << vds;
  EXPECT_NEAR(e.gmbs, gmbs_fd, 2e-3 * std::max(std::abs(e.gmbs), 1e-9))
      << "vgs=" << vgs << " vds=" << vds;
}

INSTANTIATE_TEST_SUITE_P(Regions, Level1DerivativeProperty,
                         ::testing::Combine(::testing::Values(0.1, 0.6, 0.9, 1.2),
                                            ::testing::Values(0.05, 0.3, 0.8, 1.2),
                                            ::testing::Values(0.0, -0.2, -0.5)));

// ---------------------------------------------------------------------------
// VBS: structural delay properties per workload.

enum class Workload { kChain, kTree, kAdder };

class VbsDelayProperty : public ::testing::TestWithParam<Workload> {
 protected:
  struct Setup {
    netlist::Netlist nl;
    std::vector<std::string> outputs;
    std::vector<bool> v0, v1;
  };
  static Setup make(Workload w) {
    switch (w) {
      case Workload::kChain: {
        auto c = circuits::make_inverter_chain(tech07(), 5);
        std::vector<std::string> outs = {c.netlist.net_name(c.outputs.back())};
        return {std::move(c.netlist), std::move(outs), {false}, {true}};
      }
      case Workload::kTree: {
        auto t = circuits::make_inverter_tree(tech07());
        std::vector<std::string> outs = {t.netlist.net_name(t.leaves[0])};
        return {std::move(t.netlist), std::move(outs), {false}, {true}};
      }
      case Workload::kAdder: {
        auto a = circuits::make_ripple_adder(tech07(), 3);
        std::vector<std::string> outs;
        for (const auto s : a.sum) outs.push_back(a.netlist.net_name(s));
        return {std::move(a.netlist), std::move(outs),
                concat_bits(bits_from_uint(0, 3), bits_from_uint(0, 3)),
                concat_bits(bits_from_uint(7, 3), bits_from_uint(1, 3))};
      }
    }
    throw std::logic_error("unreachable");
  }
};

TEST_P(VbsDelayProperty, DelayMonotoneDecreasingInWl) {
  const Setup s = make(GetParam());
  double prev = 1e9;
  for (double wl : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    core::VbsOptions opt;
    opt.sleep_resistance = SleepTransistor(tech07(), wl).reff();
    const double d = core::VbsSimulator(s.nl, opt).critical_delay(s.v0, s.v1, s.outputs);
    ASSERT_GT(d, 0.0) << "wl=" << wl;
    EXPECT_LT(d, prev) << "wl=" << wl;
    prev = d;
  }
}

TEST_P(VbsDelayProperty, MtcmosNeverFasterThanCmos) {
  const Setup s = make(GetParam());
  core::VbsOptions cmos;
  const double d0 = core::VbsSimulator(s.nl, cmos).critical_delay(s.v0, s.v1, s.outputs);
  for (double wl : {3.0, 10.0, 50.0}) {
    core::VbsOptions opt;
    opt.sleep_resistance = SleepTransistor(tech07(), wl).reff();
    const double d = core::VbsSimulator(s.nl, opt).critical_delay(s.v0, s.v1, s.outputs);
    EXPECT_GE(d, d0 * (1.0 - 1e-9)) << "wl=" << wl;
  }
}

TEST_P(VbsDelayProperty, BodyEffectOnlySlowsDischarge) {
  const Setup s = make(GetParam());
  core::VbsOptions plain;
  plain.sleep_resistance = SleepTransistor(tech07(), 6.0).reff();
  core::VbsOptions body = plain;
  body.body_effect = true;
  const double d_plain = core::VbsSimulator(s.nl, plain).critical_delay(s.v0, s.v1, s.outputs);
  const double d_body = core::VbsSimulator(s.nl, body).critical_delay(s.v0, s.v1, s.outputs);
  EXPECT_GE(d_body, d_plain * (1.0 - 1e-9));
}

TEST_P(VbsDelayProperty, ReverseRunReturnsToInitialLevels) {
  // Running v0->v1 then v1->v0 must land every output back on its v0 rail.
  const Setup s = make(GetParam());
  core::VbsOptions opt;
  opt.sleep_resistance = SleepTransistor(tech07(), 8.0).reff();
  const core::VbsSimulator sim(s.nl, opt);
  const auto levels0 = s.nl.evaluate(s.v0);
  const auto res = sim.run(s.v1, s.v0);
  const double vdd = s.nl.tech().vdd;
  for (int g = 0; g < s.nl.gate_count(); ++g) {
    const auto& w = res.outputs.get(s.nl.net_name(s.nl.gate(g).output));
    const bool high = w.last_value() > 0.5 * vdd;
    EXPECT_EQ(high, levels0[static_cast<std::size_t>(s.nl.gate(g).output)])
        << s.nl.gate(g).name;
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, VbsDelayProperty,
                         ::testing::Values(Workload::kChain, Workload::kTree, Workload::kAdder));

// ---------------------------------------------------------------------------
// Functional fuzz: random transitions settle to boolean-correct levels in
// the switch-level simulator (4-bit adder).

class AdderFuzzProperty : public ::testing::TestWithParam<int> {};

TEST_P(AdderFuzzProperty, VbsFinalLevelsMatchBooleanEvaluation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto adder = circuits::make_ripple_adder(tech07(), 4);
  core::VbsOptions opt;
  opt.sleep_resistance = SleepTransistor(tech07(), rng.uniform_real(4.0, 40.0)).reff();
  const core::VbsSimulator sim(adder.netlist, opt);
  const double vdd = tech07().vdd;
  for (int round = 0; round < 10; ++round) {
    const auto v0 = bits_from_uint(rng.uniform_int(0, 255), 8);
    const auto v1 = bits_from_uint(rng.uniform_int(0, 255), 8);
    const auto res = sim.run(v0, v1);
    const auto expect = adder.netlist.evaluate(v1);
    for (const auto out : adder.sum) {
      const auto& w = res.outputs.get(adder.netlist.net_name(out));
      EXPECT_EQ(w.last_value() > 0.5 * vdd, expect[static_cast<std::size_t>(out)])
          << "seed=" << GetParam() << " round=" << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdderFuzzProperty, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Extension-combination fuzz: every combination of model extensions (and
// random sleep domains) must still settle the adder to boolean-correct
// levels with finite bookkeeping.

class VbsExtensionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(VbsExtensionFuzz, AllExtensionCombinationsSettleCorrectly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  const auto adder = circuits::make_ripple_adder(tech07(), 3);
  const int n_gates = adder.netlist.gate_count();

  core::VbsOptions opt;
  opt.body_effect = rng.coin();
  opt.reverse_conduction = rng.coin();
  opt.virtual_ground_cap = rng.coin() ? rng.uniform_real(10e-15, 2e-12) : 0.0;
  opt.alpha = rng.coin() ? rng.uniform_real(1.2, 2.0) : 2.0;
  opt.input_slope_factor = rng.coin() ? rng.uniform_real(0.05, 0.5) : 0.0;
  const int n_dom = static_cast<int>(rng.uniform_int(1, 3));
  std::vector<int> domains(static_cast<std::size_t>(n_gates));
  for (int& d : domains) d = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(n_dom - 1)));
  std::vector<double> rs(static_cast<std::size_t>(n_dom));
  for (double& r : rs) r = rng.uniform_real(200.0, 4000.0);

  const core::VbsSimulator sim(adder.netlist, opt, domains, rs);
  const double vdd = tech07().vdd;
  for (int round = 0; round < 4; ++round) {
    const auto v0 = bits_from_uint(rng.uniform_int(0, 63), 6);
    const auto v1 = bits_from_uint(rng.uniform_int(0, 63), 6);
    const auto res = sim.run(v0, v1);
    EXPECT_LT(res.finish_time, 1e-6);
    EXPECT_GE(res.vx_peak, 0.0);
    EXPECT_LT(res.vx_peak, vdd);
    const auto expect = adder.netlist.evaluate(v1);
    for (const auto out : adder.sum) {
      const auto& w = res.outputs.get(adder.netlist.net_name(out));
      EXPECT_EQ(w.last_value() > 0.5 * vdd, expect[static_cast<std::size_t>(out)])
          << "seed=" << GetParam() << " round=" << round << " body=" << opt.body_effect
          << " rev=" << opt.reverse_conduction << " cx=" << opt.virtual_ground_cap
          << " alpha=" << opt.alpha << " slope=" << opt.input_slope_factor
          << " domains=" << n_dom;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VbsExtensionFuzz, ::testing::Range(1, 17));

// ---------------------------------------------------------------------------
// Sparse LU vs dense LU on random diagonally dominant systems.

class SparseLuProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SparseLuProperty, MatchesDenseSolver) {
  const auto [n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  SparseLu lu;
  DenseMatrix dense(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  std::vector<std::pair<int, int>> offdiag;
  for (int i = 0; i < n; ++i) {
    lu.reserve_entry(i, i);
    const int fanout = static_cast<int>(rng.uniform_int(1, 4));
    for (int k = 0; k < fanout; ++k) {
      const int j = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(n - 1)));
      if (j == i) continue;
      offdiag.emplace_back(i, j);
      lu.reserve_entry(i, j);
      lu.reserve_entry(j, i);
    }
  }
  lu.finalize(n);
  lu.clear_values();
  for (int i = 0; i < n; ++i) {
    lu.add(lu.slot(i, i), 0.5);
    dense.at(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += 0.5;
  }
  for (const auto& [i, j] : offdiag) {
    const double g = rng.uniform_real(0.1, 2.0);
    lu.add(lu.slot(i, j), -g);
    lu.add(lu.slot(j, i), -g);
    lu.add(lu.slot(i, i), g);
    lu.add(lu.slot(j, j), g);
    dense.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) -= g;
    dense.at(static_cast<std::size_t>(j), static_cast<std::size_t>(i)) -= g;
    dense.at(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += g;
    dense.at(static_cast<std::size_t>(j), static_cast<std::size_t>(j)) += g;
  }
  std::vector<double> b(static_cast<std::size_t>(n));
  for (double& x : b) x = rng.uniform_real(-1.0, 1.0);
  lu.factorize();
  const auto xs = lu.solve(b);
  const auto xd = dense.solve(b);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(xs[static_cast<std::size_t>(i)], xd[static_cast<std::size_t>(i)], 1e-8)
        << "n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, SparseLuProperty,
                         ::testing::Combine(::testing::Values(5, 20, 60, 150),
                                            ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------------
// Pwl: integral additivity and crossing consistency on random waveforms.

class PwlProperty : public ::testing::TestWithParam<int> {};

TEST_P(PwlProperty, IntegralIsAdditiveAndCrossingsConsistent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Pwl w;
  double t = 0.0;
  for (int i = 0; i < 30; ++i) {
    w.append(t, rng.uniform_real(-1.0, 2.0));
    t += rng.uniform_real(0.01, 1.0);
  }
  const double t0 = w.first_time(), t1 = w.last_time();
  const double tm = 0.5 * (t0 + t1);
  EXPECT_NEAR(w.integral(t0, t1), w.integral(t0, tm) + w.integral(tm, t1),
              1e-9 * (1.0 + std::abs(w.integral(t0, t1))));
  // Every reported crossing must actually sit on the level.
  for (double level : {0.0, 0.5, 1.0}) {
    const auto c = w.crossing(level, Edge::kAny);
    if (c) EXPECT_NEAR(w.sample(*c), level, 1e-9);
    const auto lc = w.last_crossing(level, Edge::kAny);
    if (lc) EXPECT_NEAR(w.sample(*lc), level, 1e-9);
    if (c && lc) EXPECT_LE(*c, *lc + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PwlProperty, ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// Random netlists: .mtn round trip preserves function; transistor DC
// agrees with boolean evaluation.

netlist::Netlist random_netlist(Rng& rng, int n_inputs, int n_gates) {
  netlist::Netlist nl(tech07());
  std::vector<netlist::NetId> nets;
  for (int i = 0; i < n_inputs; ++i) nets.push_back(nl.add_input("in" + std::to_string(i)));
  for (int g = 0; g < n_gates; ++g) {
    const std::string name = "g" + std::to_string(g);
    auto pick = [&] {
      return nets[static_cast<std::size_t>(rng.uniform_int(0, nets.size() - 1))];
    };
    netlist::NetId out = -1;
    switch (rng.uniform_int(0, 5)) {
      case 0:
        out = nl.add_inv(name, pick());
        break;
      case 1:
        out = nl.add_nand2(name, pick(), pick());
        break;
      case 2:
        out = nl.add_nor2(name, pick(), pick());
        break;
      case 3:
        out = nl.add_aoi21(name, pick(), pick(), pick());
        break;
      case 4:
        out = nl.add_oai21(name, pick(), pick(), pick());
        break;
      default:
        out = nl.add_nand3(name, pick(), pick(), pick());
        break;
    }
    nets.push_back(out);
    if (rng.coin()) nl.add_load(out, rng.uniform_real(5.0, 60.0) * fF);
  }
  return nl;
}

class RandomNetlistProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomNetlistProperty, IoRoundTripPreservesFunction) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const netlist::Netlist nl = random_netlist(rng, 4, 12);
  std::ostringstream os;
  netlist::write_netlist(os, nl);
  std::istringstream in(os.str());
  const auto round = netlist::read_netlist(in);
  ASSERT_EQ(round.nl.gate_count(), nl.gate_count());
  for (int v = 0; v < 16; ++v) {
    const auto bits = bits_from_uint(static_cast<std::uint64_t>(v), 4);
    const auto a = nl.evaluate(bits);
    const auto b = round.nl.evaluate(bits);
    for (int g = 0; g < nl.gate_count(); ++g) {
      const auto net = nl.gate(g).output;
      EXPECT_EQ(a[static_cast<std::size_t>(net)],
                b[static_cast<std::size_t>(*round.nl.find_net(nl.net_name(net)))])
          << "gate " << nl.gate(g).name << " v=" << v;
    }
  }
}

TEST_P(RandomNetlistProperty, TransistorDcMatchesBooleanEvaluation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const netlist::Netlist nl = random_netlist(rng, 3, 8);
  netlist::ExpandOptions opt;
  opt.sleep_wl = 25.0;
  for (int v = 0; v < 8; ++v) {
    const auto bits = bits_from_uint(static_cast<std::uint64_t>(v), 3);
    auto ex = netlist::to_spice(nl, opt, bits, bits);
    spice::Engine eng(ex.circuit);
    const auto volts = eng.dc_operating_point(1.0);
    const auto logic = nl.evaluate(bits);
    const double vdd = nl.tech().vdd;
    for (int g = 0; g < nl.gate_count(); ++g) {
      const auto net = nl.gate(g).output;
      const double vn =
          volts[static_cast<std::size_t>(*ex.circuit.find_node(nl.net_name(net)))];
      EXPECT_EQ(vn > 0.5 * vdd, logic[static_cast<std::size_t>(net)])
          << "gate " << nl.gate(g).name << " v=" << v << " vn=" << vn;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetlistProperty, ::testing::Range(1, 7));

}  // namespace
}  // namespace mtcmos
