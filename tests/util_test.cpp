// Unit tests for mtcmos::util: dense LU, sparse LU, tables, RNG, errors.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/dense_matrix.hpp"
#include "util/error.hpp"
#include "util/failure.hpp"
#include "util/rng.hpp"
#include "util/sparse_lu.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace mtcmos {
namespace {

TEST(Units, ScaleFactors) {
  EXPECT_DOUBLE_EQ(50.0 * units::fF, 50e-15);
  EXPECT_DOUBLE_EQ(1.2 * units::ns, 1.2e-9);
  EXPECT_DOUBLE_EQ(0.7 * units::um, 0.7e-6);
}

TEST(Units, ThermalVoltageAt300K) {
  EXPECT_NEAR(constants::thermal_voltage(300.0), 0.02585, 1e-4);
}

TEST(Error, RequireThrowsInvalidArgument) {
  EXPECT_THROW(require(false, "nope"), std::invalid_argument);
  EXPECT_NO_THROW(require(true, "fine"));
}

TEST(Error, EnsureThrowsLogicError) { EXPECT_THROW(ensure(false, "bug"), std::logic_error); }

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, UniformRealInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(-1.0, 2.0);
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 2.0);
  }
}

TEST(DenseMatrix, SolvesIdentity) {
  DenseMatrix m(3, 3);
  for (std::size_t i = 0; i < 3; ++i) m.at(i, i) = 1.0;
  const auto x = m.solve({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(DenseMatrix, SolvesGeneralSystem) {
  DenseMatrix m(2, 2);
  m.at(0, 0) = 2.0;
  m.at(0, 1) = 1.0;
  m.at(1, 0) = 1.0;
  m.at(1, 1) = 3.0;
  const auto x = m.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseMatrix, RequiresPivoting) {
  // Zero on the leading diagonal forces a row swap.
  DenseMatrix m(2, 2);
  m.at(0, 0) = 0.0;
  m.at(0, 1) = 1.0;
  m.at(1, 0) = 1.0;
  m.at(1, 1) = 0.0;
  const auto x = m.solve({2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(DenseMatrix, SingularThrows) {
  DenseMatrix m(2, 2);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 2.0;
  m.at(1, 0) = 2.0;
  m.at(1, 1) = 4.0;
  EXPECT_THROW(m.solve({1.0, 1.0}), NumericalError);
}

TEST(DenseMatrix, MultiplyMatchesSolveRoundTrip) {
  DenseMatrix m(3, 3);
  m.at(0, 0) = 4.0;
  m.at(0, 1) = 1.0;
  m.at(1, 0) = 1.0;
  m.at(1, 1) = 3.0;
  m.at(1, 2) = 1.0;
  m.at(2, 1) = 1.0;
  m.at(2, 2) = 5.0;
  const std::vector<double> x0 = {1.0, -2.0, 0.5};
  const auto b = m.multiply(x0);
  const auto x = m.solve(b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x0[i], 1e-12);
}

// --- SparseLu ---

TEST(SparseLu, DiagonalSystem) {
  SparseLu lu;
  for (int i = 0; i < 4; ++i) lu.reserve_entry(i, i);
  lu.finalize(4);
  lu.clear_values();
  for (int i = 0; i < 4; ++i) lu.add(lu.slot(i, i), static_cast<double>(i + 1));
  lu.factorize();
  const auto x = lu.solve({1.0, 2.0, 3.0, 4.0});
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(x[static_cast<std::size_t>(i)], 1.0, 1e-12);
}

TEST(SparseLu, MatchesDenseOnRandomSpdSystem) {
  // Random diagonally dominant sparse system, compared against DenseMatrix.
  Rng rng(123);
  const int n = 40;
  DenseMatrix dense(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  SparseLu lu;
  std::vector<std::pair<int, int>> entries;
  for (int i = 0; i < n; ++i) {
    entries.emplace_back(i, i);
    for (int k = 0; k < 3; ++k) {
      const int j = static_cast<int>(rng.uniform_int(0, static_cast<std::uint64_t>(n - 1)));
      if (j != i) {
        entries.emplace_back(i, j);
        entries.emplace_back(j, i);
      }
    }
  }
  for (const auto& [i, j] : entries) lu.reserve_entry(i, j);
  lu.finalize(n);
  lu.clear_values();
  for (const auto& [i, j] : entries) {
    if (i == j) continue;
    const double v = -rng.uniform_real(0.1, 1.0);
    // Accumulate symmetric off-diagonals and keep the diagonal dominant.
    lu.add(lu.slot(i, j), v);
    dense.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) += v;
    lu.add(lu.slot(i, i), -v + 0.5);
    dense.at(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += -v + 0.5;
  }
  for (int i = 0; i < n; ++i) {
    lu.add(lu.slot(i, i), 1.0);
    dense.at(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += 1.0;
  }
  std::vector<double> b(static_cast<std::size_t>(n));
  for (double& x : b) x = rng.uniform_real(-1.0, 1.0);
  lu.factorize();
  const auto xs = lu.solve(b);
  const auto xd = dense.solve(b);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(xs[static_cast<std::size_t>(i)], xd[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(SparseLu, TridiagonalWithFill) {
  // Arrow matrix: dense last row/col forces fill under naive order; the
  // min-degree ordering should handle it and produce the right answer.
  const int n = 20;
  SparseLu lu;
  for (int i = 0; i < n; ++i) {
    lu.reserve_entry(i, i);
    lu.reserve_entry(i, n - 1);
    lu.reserve_entry(n - 1, i);
  }
  lu.finalize(n);
  lu.clear_values();
  for (int i = 0; i < n; ++i) lu.add(lu.slot(i, i), 4.0);
  for (int i = 0; i + 1 < n; ++i) {
    lu.add(lu.slot(i, n - 1), -1.0);
    lu.add(lu.slot(n - 1, i), -1.0);
  }
  lu.factorize();
  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  const auto x = lu.solve(b);
  // Verify A x = b directly.
  for (int i = 0; i + 1 < n; ++i) {
    const double row = 4.0 * x[static_cast<std::size_t>(i)] - x[static_cast<std::size_t>(n - 1)];
    EXPECT_NEAR(row, 1.0, 1e-10);
  }
  double last = 4.0 * x[static_cast<std::size_t>(n - 1)];
  for (int i = 0; i + 1 < n; ++i) last -= x[static_cast<std::size_t>(i)];
  EXPECT_NEAR(last, 1.0, 1e-10);
}

TEST(SparseLu, RefactorizeWithNewValues) {
  SparseLu lu;
  lu.reserve_entry(0, 0);
  lu.reserve_entry(0, 1);
  lu.reserve_entry(1, 0);
  lu.reserve_entry(1, 1);
  lu.finalize(2);
  for (double scale : {1.0, 2.0, 10.0}) {
    lu.clear_values();
    lu.add(lu.slot(0, 0), 2.0 * scale);
    lu.add(lu.slot(1, 1), 2.0 * scale);
    lu.add(lu.slot(0, 1), -1.0 * scale);
    lu.add(lu.slot(1, 0), -1.0 * scale);
    lu.factorize();
    const auto x = lu.solve({scale, scale});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 1.0, 1e-12);
  }
}

TEST(SparseLu, MultiplyMatchesStampedValues) {
  SparseLu lu;
  lu.reserve_entry(0, 0);
  lu.reserve_entry(0, 1);
  lu.reserve_entry(1, 0);
  lu.reserve_entry(1, 1);
  lu.finalize(2);
  lu.clear_values();
  lu.add(lu.slot(0, 0), 2.0);
  lu.add(lu.slot(0, 1), -1.0);
  lu.add(lu.slot(1, 0), 3.0);
  lu.add(lu.slot(1, 1), 4.0);
  const auto y = lu.multiply({1.0, 2.0});
  EXPECT_DOUBLE_EQ(y[0], 0.0);   // 2*1 - 1*2
  EXPECT_DOUBLE_EQ(y[1], 11.0);  // 3*1 + 4*2
}

TEST(SparseLu, ZeroPivotActuallyThrows) {
  SparseLu lu;
  lu.reserve_entry(0, 0);
  lu.reserve_entry(0, 1);
  lu.reserve_entry(1, 0);
  lu.reserve_entry(1, 1);
  lu.finalize(2);
  lu.clear_values();
  // Row 1 depends on pivot 0 which is zero.
  lu.add(lu.slot(0, 1), 1.0);
  lu.add(lu.slot(1, 0), 1.0);
  lu.add(lu.slot(1, 1), 1.0);
  EXPECT_THROW(lu.factorize(), NumericalError);
}

TEST(SparseLu, SolveBeforeFactorizeThrowsCodedError) {
  SparseLu lu;
  lu.reserve_entry(0, 0);
  lu.finalize(1);
  lu.clear_values();
  lu.add(lu.slot(0, 0), 2.0);
  // No factorize() yet: both solve paths must refuse with a classified
  // failure instead of reading an empty factor array.
  try {
    (void)lu.solve({1.0});
    FAIL() << "solve() before factorize() did not throw";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.info().code, FailureCode::kSingularMatrix);
  }
  std::vector<double> b = {1.0};
  EXPECT_THROW(lu.solve_inplace(b), NumericalError);
  EXPECT_FALSE(lu.have_factor());
}

TEST(SparseLu, FailedFactorizeInvalidatesPreviousSnapshot) {
  SparseLu lu;
  lu.reserve_entry(0, 0);
  lu.reserve_entry(0, 1);
  lu.reserve_entry(1, 0);
  lu.reserve_entry(1, 1);
  lu.finalize(2);
  lu.clear_values();
  lu.add(lu.slot(0, 0), 2.0);
  lu.add(lu.slot(1, 1), 2.0);
  lu.factorize();
  EXPECT_TRUE(lu.have_factor());
  // Restamping alone must NOT invalidate the snapshot (modified-Newton
  // callers keep solving against it between refactorizes)...
  lu.clear_values();
  lu.add(lu.slot(0, 1), 1.0);
  lu.add(lu.slot(1, 0), 1.0);
  lu.add(lu.slot(1, 1), 1.0);
  EXPECT_TRUE(lu.have_factor());
  EXPECT_NO_THROW((void)lu.solve({1.0, 1.0}));
  // ...but a failed factorization (zero pivot) must: the partial
  // elimination it left behind is garbage, not the old snapshot.
  EXPECT_THROW(lu.factorize(), NumericalError);
  EXPECT_FALSE(lu.have_factor());
  try {
    (void)lu.solve({1.0, 1.0});
    FAIL() << "solve() after failed factorize() did not throw";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.info().code, FailureCode::kSingularMatrix);
  }
}

TEST(SparseLu, InPlaceVariantsMatchAllocatingOnes) {
  SparseLu lu;
  lu.reserve_entry(0, 0);
  lu.reserve_entry(0, 1);
  lu.reserve_entry(1, 0);
  lu.reserve_entry(1, 1);
  lu.reserve_entry(2, 2);
  lu.finalize(3);
  lu.clear_values();
  lu.add(lu.slot(0, 0), 3.0);
  lu.add(lu.slot(0, 1), -1.0);
  lu.add(lu.slot(1, 0), -1.0);
  lu.add(lu.slot(1, 1), 2.5);
  lu.add(lu.slot(2, 2), 4.0);
  lu.factorize();
  const std::vector<double> b = {1.0, -2.0, 3.0};
  const auto x = lu.solve(b);
  std::vector<double> x_inplace = b;
  lu.solve_inplace(x_inplace);
  ASSERT_EQ(x.size(), x_inplace.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], x_inplace[i]) << i;

  const auto y = lu.multiply(x);
  std::vector<double> y_into;
  lu.multiply_into(x, y_into);
  ASSERT_EQ(y.size(), y_into.size());
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], y_into[i]) << i;
}

TEST(SparseLu, SlotForMissingEntryIsNegative) {
  SparseLu lu;
  lu.reserve_entry(0, 0);
  lu.reserve_entry(1, 1);
  lu.finalize(2);
  EXPECT_GE(lu.slot(0, 0), 0);
  EXPECT_EQ(lu.slot(0, 1), -1);
}

TEST(SparseLu, ReserveAfterFinalizeThrows) {
  SparseLu lu;
  lu.reserve_entry(0, 0);
  lu.finalize(1);
  EXPECT_THROW(lu.reserve_entry(0, 0), std::invalid_argument);
}

// --- Table ---

TEST(Table, PrintsAlignedColumns) {
  Table t({"W/L", "delay [ns]"});
  t.add_row({"10", "1.5"});
  t.add_row({"100", "0.9"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("W/L"), std::string::npos);
  EXPECT_NE(s.find("delay [ns]"), std::string::npos);
  EXPECT_NE(s.find("100"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowCellCountMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.5), "1.5");
  EXPECT_EQ(Table::num(0.123456, 3), "0.123");
}

Outcome<double> failed_outcome(FailureCode code) {
  FailureInfo info;
  info.code = code;
  info.site = "test";
  return Outcome<double>::fail(info);
}

TEST(SweepReport, BoundedRetentionKeepsCountsExact) {
  SweepReport report;
  report.max_failures = 3;
  for (std::size_t i = 0; i < 10; ++i) {
    report.add(i, failed_outcome(FailureCode::kNewtonDiverged));
  }
  report.add(10, Outcome<double>::success(1.0));
  EXPECT_EQ(report.failed, 10u);             // exact
  EXPECT_EQ(report.failures.size(), 3u);     // detail capped
  EXPECT_EQ(report.failures_dropped, 7u);
  const auto histogram = report.code_histogram();
  ASSERT_EQ(histogram.size(), 1u);
  EXPECT_EQ(histogram[0].first, FailureCode::kNewtonDiverged);
  EXPECT_EQ(histogram[0].second, 10u);       // histogram unaffected by the cap
  EXPECT_NE(report.summary().find("7 failure details dropped"), std::string::npos);
}

TEST(SweepReport, MergeHonorsTheDestinationCap) {
  SweepReport src;
  for (std::size_t i = 0; i < 5; ++i) src.add(i, failed_outcome(FailureCode::kSingularMatrix));

  SweepReport dst;
  dst.max_failures = 2;
  dst.merge(src);
  dst.merge(src);
  EXPECT_EQ(dst.failed, 10u);
  EXPECT_EQ(dst.failures.size(), 2u);
  EXPECT_EQ(dst.failures_dropped, 8u);
  const auto histogram = dst.code_histogram();
  ASSERT_EQ(histogram.size(), 1u);
  EXPECT_EQ(histogram[0].second, 10u);
}

TEST(SweepReport, MergeAggregatesMixedCodesAndRungs) {
  SweepReport a;
  a.add(0, Outcome<double>::success(1.0));
  a.add(1, Outcome<double>::success(1.0, 2));  // recovered on rung 1
  a.add(2, failed_outcome(FailureCode::kCancelled));

  SweepReport b;
  b.add(0, failed_outcome(FailureCode::kNewtonDiverged));

  a.merge(b);
  EXPECT_EQ(a.total, 4u);
  EXPECT_EQ(a.succeeded, 1u);
  EXPECT_EQ(a.recovered, 1u);
  EXPECT_EQ(a.failed, 2u);
  ASSERT_EQ(a.rung_histogram.size(), 2u);
  EXPECT_EQ(a.rung_histogram[0], 1u);
  EXPECT_EQ(a.rung_histogram[1], 1u);
  EXPECT_EQ(a.code_histogram().size(), 2u);
  EXPECT_EQ(a.failures_dropped, 0u);
}

}  // namespace
}  // namespace mtcmos
