// Tests for the MNA transient engine: analytic linear circuits, MOSFET DC
// behaviour, inverter delays, and the MTCMOS-specific phenomena (virtual
// ground bounce, sleep-transistor-vs-resistor equivalence, reverse
// conduction).

#include <gtest/gtest.h>

#include <cmath>

#include "models/level1.hpp"
#include "models/sleep_transistor.hpp"
#include "models/technology.hpp"
#include "spice/circuit.hpp"
#include "spice/engine.hpp"
#include "util/units.hpp"
#include "waveform/measure.hpp"

namespace mtcmos::spice {
namespace {

using mtcmos::units::fF;
using mtcmos::units::ns;
using mtcmos::units::ps;

TEST(SpiceDc, ResistorDivider) {
  Circuit ckt;
  const NodeId vin = ckt.node("vin");
  const NodeId mid = ckt.node("mid");
  ckt.add_vsource("V1", vin, Pwl::constant(2.0));
  ckt.add_resistor("R1", vin, mid, 1000.0);
  ckt.add_resistor("R2", mid, kGround, 3000.0);
  Engine eng(ckt);
  const auto v = eng.dc_operating_point();
  EXPECT_NEAR(v[static_cast<std::size_t>(mid)], 1.5, 1e-6);
  EXPECT_NEAR(eng.dc_device_current("R1", v), 0.5e-3, 1e-8);
}

TEST(SpiceDc, DriverlessNodePulledToGroundByGmin) {
  Circuit ckt;
  const NodeId floating = ckt.node("floating");
  const NodeId vin = ckt.node("vin");
  ckt.add_vsource("V1", vin, Pwl::constant(1.0));
  ckt.add_resistor("R1", vin, ckt.node("a"), 100.0);
  ckt.add_resistor("R2", ckt.node("a"), kGround, 100.0);
  ckt.add_capacitor("C1", floating, kGround, 1.0 * fF);
  Engine eng(ckt);
  const auto v = eng.dc_operating_point();
  EXPECT_NEAR(v[static_cast<std::size_t>(floating)], 0.0, 1e-9);
}

TEST(SpiceDc, CurrentSourceIntoResistor) {
  Circuit ckt;
  const NodeId out = ckt.node("out");
  ckt.add_isource("I1", kGround, out, Pwl::constant(1e-3));
  ckt.add_resistor("R1", out, kGround, 2000.0);
  Engine eng(ckt);
  const auto v = eng.dc_operating_point();
  EXPECT_NEAR(v[static_cast<std::size_t>(out)], 2.0, 1e-5);
}

TEST(SpiceDc, DiodeConnectedNmosMatchesModel) {
  const Technology t = tech07();
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId d = ckt.node("d");
  ckt.add_vsource("VDD", vdd, Pwl::constant(t.vdd));
  ckt.add_resistor("R1", vdd, d, 10e3);
  ckt.add_mosfet("M1", d, d, kGround, kGround, t.nmos_low, 2.1e-6, 0.7e-6);
  Engine eng(ckt);
  const auto v = eng.dc_operating_point();
  const double vd = v[static_cast<std::size_t>(d)];
  // KCL: (vdd - vd)/R = Id(vd).
  const double i_res = (t.vdd - vd) / 10e3;
  const MosEval e = mos_level1_eval(t.nmos_low, 2.1e-6, 0.7e-6, vd, vd, 0.0);
  EXPECT_NEAR(i_res, e.id, 1e-9 + 1e-5 * i_res);
  EXPECT_NEAR(eng.dc_device_current("M1", v), e.id, 1e-12 + 1e-9 * e.id);
}

TEST(SpiceTransient, RcDischargeMatchesAnalytic) {
  // 1 kOhm / 1 pF: tau = 1 ns.  Node starts at 1 V (via DC with source),
  // source steps to 0 at t=0 instantly; v(t) = exp(-t/tau).
  Circuit ckt;
  const NodeId src = ckt.node("src");
  const NodeId out = ckt.node("out");
  Pwl v_src;
  v_src.append(0.0, 1.0);
  v_src.append(1.0 * ps, 0.0);
  ckt.add_vsource("V1", src, v_src);
  ckt.add_resistor("R1", src, out, 1000.0);
  ckt.add_capacitor("C1", out, kGround, 1e-12);
  Engine eng(ckt);
  TransientOptions opt;
  opt.tstop = 5.0 * ns;
  opt.dt = 1.0 * ps;
  opt.voltage_probes = {"out"};
  const TransientResult res = eng.run_transient(opt);
  const Pwl& w = res.voltages.get("out");
  for (double t : {0.5 * ns, 1.0 * ns, 2.0 * ns, 4.0 * ns}) {
    const double expected = std::exp(-(t - 1.0 * ps) / (1.0 * ns));
    EXPECT_NEAR(w.sample(t), expected, 5e-3) << "at t=" << t;
  }
}

TEST(SpiceTransient, RcChargeFromZero) {
  Circuit ckt;
  const NodeId src = ckt.node("src");
  const NodeId out = ckt.node("out");
  ckt.add_vsource("V1", src, Pwl::step(0.0, 1.0, 0.0, 1.0 * ps));
  ckt.add_resistor("R1", src, out, 10e3);
  ckt.add_capacitor("C1", out, kGround, 100 * fF);  // tau = 1 ns
  Engine eng(ckt);
  TransientOptions opt;
  opt.tstop = 4.0 * ns;
  opt.dt = 2.0 * ps;
  opt.voltage_probes = {"out"};
  const auto res = eng.run_transient(opt);
  const Pwl& w = res.voltages.get("out");
  EXPECT_NEAR(w.sample(1.0 * ns), 1.0 - std::exp(-1.0), 5e-3);
  EXPECT_NEAR(w.sample(4.0 * ns), 1.0 - std::exp(-4.0), 5e-3);
}

TEST(SpiceTransient, CapacitorConservesChargeBetweenTwoCaps) {
  // Charge sharing: C1 (1 pF at 1 V) connected through R to C2 (1 pF at 0).
  // Final voltage on both = 0.5 V.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  const NodeId src = ckt.node("src");
  // Pre-charge a to 1 V through a small resistor, then let the source float
  // is not possible with ideal sources; instead emulate: source drives a
  // through a tiny R until t=0.1ns, then jumps to... keep it simple: start
  // DC with source at 1 V connected to `a` via small R and large R to b.
  ckt.add_vsource("V1", src, Pwl::step(1.0, 1.0, 0.0, 1.0 * ps));  // constant 1 V
  ckt.add_resistor("Rsrc", src, a, 1e9);  // effectively disconnected
  ckt.add_resistor("Rab", a, b, 1e3);
  ckt.add_capacitor("C1", a, kGround, 1e-12);
  ckt.add_capacitor("C2", b, kGround, 1e-12);
  Engine eng(ckt);
  // DC: both nodes at 1 V (through the 1 GOhm + gmin ladder)... with gmin
  // to ground, the divider sits near 1 V * (gmin path); accept whatever DC
  // gives and just verify the two nodes equalize and stay equal.
  TransientOptions opt;
  opt.tstop = 1.0 * ns;
  opt.dt = 1.0 * ps;
  opt.voltage_probes = {"a", "b"};
  const auto res = eng.run_transient(opt);
  EXPECT_NEAR(res.voltages.get("a").last_value(), res.voltages.get("b").last_value(), 1e-3);
}

// ---------------------------------------------------------------------------
// Inverter-level behaviour.

struct InverterFixture {
  Circuit ckt;
  NodeId vdd_node, in, out;
  Technology tech = tech07();

  explicit InverterFixture(double cl = 50.0 * fF, bool with_sleep = false, double sleep_wl = 10.0,
                           bool sleep_as_resistor = false) {
    vdd_node = ckt.node("vdd");
    in = ckt.node("in");
    out = ckt.node("out");
    ckt.add_vsource("VDD", vdd_node, Pwl::constant(tech.vdd));
    NodeId source_n = kGround;
    if (with_sleep) {
      source_n = ckt.node("vgnd");
      if (sleep_as_resistor) {
        const SleepTransistor st(tech, sleep_wl);
        ckt.add_resistor("Rsleep", source_n, kGround, st.reff());
      } else {
        ckt.add_mosfet("Msleep", source_n, vdd_node, kGround, kGround, tech.nmos_high,
                       sleep_wl * tech.lmin, tech.lmin);
      }
      ckt.add_node_cap(source_n, 1.0 * fF);
    }
    ckt.add_mosfet("MP", out, in, vdd_node, vdd_node, tech.pmos_low, tech.wp_default, tech.lmin);
    ckt.add_mosfet("MN", out, in, source_n, kGround, tech.nmos_low, tech.wn_default, tech.lmin);
    ckt.add_node_cap(out, cl);
  }

  /// Falling-output propagation delay for a rising input step at 0.2 ns.
  double tphl(double dt = 1.0 * ps) {
    ckt.set_vsource("VIN", Pwl::step(0.0, tech.vdd, 0.2 * ns, 50.0 * ps));
    Engine eng(ckt);
    TransientOptions opt;
    opt.tstop = 3.0 * ns;
    opt.dt = dt;
    opt.voltage_probes = {"in", "out"};
    const auto res = eng.run_transient(opt);
    const auto d = propagation_delay(res.voltages.get("in"), res.voltages.get("out"), tech.vdd,
                                     Edge::kRising, Edge::kFalling);
    EXPECT_TRUE(d.has_value());
    return d.value_or(-1.0);
  }

  void add_input_source() { ckt.add_vsource("VIN", in, Pwl::constant(0.0)); }
};

TEST(SpiceInverter, VtcEndpoints) {
  InverterFixture f;
  f.add_input_source();
  Engine eng(f.ckt);
  f.ckt.set_vsource("VIN", Pwl::constant(0.0));
  auto v = eng.dc_operating_point();
  EXPECT_NEAR(v[static_cast<std::size_t>(f.out)], f.tech.vdd, 5e-3);
  f.ckt.set_vsource("VIN", Pwl::constant(f.tech.vdd));
  v = eng.dc_operating_point();
  EXPECT_NEAR(v[static_cast<std::size_t>(f.out)], 0.0, 5e-3);
}

TEST(SpiceInverter, VtcIsMonotonicallyFalling) {
  InverterFixture f;
  f.add_input_source();
  Engine eng(f.ckt);
  double prev = 1e9;
  for (double vin = 0.0; vin <= f.tech.vdd + 1e-9; vin += 0.1) {
    f.ckt.set_vsource("VIN", Pwl::constant(vin));
    const auto v = eng.dc_operating_point();
    const double vout = v[static_cast<std::size_t>(f.out)];
    EXPECT_LE(vout, prev + 1e-6) << "VTC not monotone at vin=" << vin;
    prev = vout;
  }
}

TEST(SpiceInverter, FallingDelayNearFirstOrderEstimate) {
  InverterFixture f;
  f.add_input_source();
  const double d = f.tphl();
  // First-order estimate: CL * Vdd/2 / Idsat (paper Eq. 3).
  const double isat =
      saturation_current(f.tech.nmos_low, f.tech.wn_default / f.tech.lmin, f.tech.vdd, 0.0);
  const double estimate = 50.0 * fF * (f.tech.vdd / 2.0) / isat;
  EXPECT_GT(d, 0.3 * estimate);
  EXPECT_LT(d, 2.0 * estimate);
}

TEST(SpiceInverter, DelayScalesWithLoad) {
  InverterFixture f1(25.0 * fF);
  f1.add_input_source();
  InverterFixture f2(100.0 * fF);
  f2.add_input_source();
  const double d1 = f1.tphl();
  const double d2 = f2.tphl();
  EXPECT_NEAR(d2 / d1, 4.0, 1.0);  // roughly linear in CL
}

TEST(SpiceMtcmos, SleepTransistorSlowsFallingEdge) {
  InverterFixture plain(50.0 * fF, /*with_sleep=*/false);
  plain.add_input_source();
  InverterFixture gated(50.0 * fF, /*with_sleep=*/true, /*sleep_wl=*/3.0);
  gated.add_input_source();
  const double d_plain = plain.tphl();
  const double d_gated = gated.tphl();
  EXPECT_GT(d_gated, d_plain * 1.02);
}

TEST(SpiceMtcmos, DelayMonotoneInSleepWidth) {
  double prev = 1e9;
  for (double wl : {2.0, 5.0, 10.0, 20.0}) {
    InverterFixture f(50.0 * fF, true, wl);
    f.add_input_source();
    const double d = f.tphl();
    EXPECT_LT(d, prev) << "delay should shrink as sleep W/L grows, wl=" << wl;
    prev = d;
  }
}

TEST(SpiceMtcmos, ResistorApproximationCloseToDevice) {
  // Paper Section 2.1: the ON sleep transistor behaves like a linear
  // resistor *while the virtual ground stays low*.  Delays with the device
  // and with R_eff agree within a modest tolerance at the sizings where
  // the bounce is small; the severely undersized regime (where the device
  // leaves deep triode) is quantified in bench fig02_resistor_approx.
  for (double wl : {10.0, 20.0, 40.0}) {
    InverterFixture dev(50.0 * fF, true, wl, /*sleep_as_resistor=*/false);
    dev.add_input_source();
    InverterFixture res(50.0 * fF, true, wl, /*sleep_as_resistor=*/true);
    res.add_input_source();
    const double dd = dev.tphl();
    const double dr = res.tphl();
    EXPECT_NEAR(dd / dr, 1.0, 0.15) << "wl=" << wl;
  }
}

TEST(SpiceMtcmos, RisingEdgeUnaffectedBySleepTransistor) {
  // Only the high-to-low transition is affected by an NMOS sleep device
  // (paper Section 2.1).
  auto tplh = [](bool with_sleep) {
    InverterFixture f(50.0 * fF, with_sleep, 5.0);
    f.ckt.add_vsource("VIN", f.in, Pwl::step(f.tech.vdd, 0.0, 0.2 * ns, 50.0 * ps));
    Engine eng(f.ckt);
    TransientOptions opt;
    opt.tstop = 3.0 * ns;
    opt.dt = 1.0 * ps;
    opt.voltage_probes = {"in", "out"};
    const auto res = eng.run_transient(opt);
    const auto d = propagation_delay(res.voltages.get("in"), res.voltages.get("out"), f.tech.vdd,
                                     Edge::kFalling, Edge::kRising);
    EXPECT_TRUE(d.has_value());
    return d.value_or(-1.0);
  };
  const double d_plain = tplh(false);
  const double d_gated = tplh(true);
  EXPECT_NEAR(d_gated / d_plain, 1.0, 0.05);
}

TEST(SpiceMtcmos, VirtualGroundBouncesDuringDischarge) {
  InverterFixture f(50.0 * fF, true, 5.0);
  f.ckt.add_vsource("VIN", f.in, Pwl::step(0.0, f.tech.vdd, 0.2 * ns, 50.0 * ps));
  Engine eng(f.ckt);
  TransientOptions opt;
  opt.tstop = 3.0 * ns;
  opt.dt = 1.0 * ps;
  opt.voltage_probes = {"vgnd"};
  opt.current_probes = {"Msleep"};
  const auto res = eng.run_transient(opt);
  const Pwl& vgnd = res.voltages.get("vgnd");
  EXPECT_GT(vgnd.max_value(), 0.02);          // bounces up during discharge
  EXPECT_LT(vgnd.sample(0.1 * ns), 0.01);     // quiet before the edge
  EXPECT_LT(vgnd.last_value(), 0.02);         // settles back
  // Sleep current integrates the discharge: peak must be positive.
  EXPECT_GT(res.currents.get("Msleep").max_value(), 0.0);
}

TEST(SpiceMtcmos, ReverseConductionPinsLowOutputToVx) {
  // Two inverters share a virtual ground.  Gate A discharges a big load
  // (bouncing the virtual ground); gate B's output is already low and gets
  // pulled up toward Vx through its ON NMOS (paper Section 2.3).
  const Technology tech = tech07();
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId vgnd = ckt.node("vgnd");
  const NodeId a_in = ckt.node("a_in");
  const NodeId a_out = ckt.node("a_out");
  const NodeId b_in = ckt.node("b_in");
  const NodeId b_out = ckt.node("b_out");
  ckt.add_vsource("VDD", vdd, Pwl::constant(tech.vdd));
  ckt.add_mosfet("Msleep", vgnd, vdd, kGround, kGround, tech.nmos_high, 2.0 * tech.lmin,
                 tech.lmin);
  auto add_inv = [&](const std::string& p, NodeId in, NodeId out, double cl) {
    ckt.add_mosfet(p + "_mp", out, in, vdd, vdd, tech.pmos_low, tech.wp_default, tech.lmin);
    ckt.add_mosfet(p + "_mn", out, in, vgnd, kGround, tech.nmos_low, tech.wn_default, tech.lmin);
    ckt.add_node_cap(out, cl);
  };
  add_inv("a", a_in, a_out, 200.0 * fF);
  add_inv("b", b_in, b_out, 50.0 * fF);
  ckt.add_vsource("VA", a_in, Pwl::step(0.0, tech.vdd, 0.2 * ns, 50.0 * ps));
  ckt.add_vsource("VB", b_in, Pwl::constant(tech.vdd));  // B output held low
  Engine eng(ckt);
  TransientOptions opt;
  opt.tstop = 6.0 * ns;
  opt.dt = 1.0 * ps;
  opt.voltage_probes = {"vgnd", "b_out"};
  const auto res = eng.run_transient(opt);
  const double vx_peak = res.voltages.get("vgnd").max_value();
  const double b_peak = res.voltages.get("b_out").max_value();
  EXPECT_GT(vx_peak, 0.05);
  // b_out is dragged up toward the bounced virtual ground.
  EXPECT_GT(b_peak, 0.3 * vx_peak);
  EXPECT_LT(b_peak, 1.2 * vx_peak);
}

TEST(SpiceTransientAdaptive, RcDischargeMatchesAnalyticWithFewerSteps) {
  Circuit ckt;
  const NodeId src = ckt.node("src");
  const NodeId out = ckt.node("out");
  Pwl v_src;
  v_src.append(0.0, 1.0);
  v_src.append(1.0 * ps, 0.0);
  ckt.add_vsource("V1", src, v_src);
  ckt.add_resistor("R1", src, out, 1000.0);
  ckt.add_capacitor("C1", out, kGround, 1e-12);  // tau = 1 ns
  Engine eng(ckt);
  TransientOptions fixed;
  fixed.tstop = 8.0 * ns;
  fixed.dt = 1.0 * ps;
  fixed.voltage_probes = {"out"};
  TransientOptions adaptive = fixed;
  adaptive.adaptive = true;
  adaptive.lte_tol = 1e-4;
  adaptive.dt_max = 200.0 * ps;
  const auto rf = eng.run_transient(fixed);
  const auto ra = eng.run_transient(adaptive);
  for (double t : {0.5 * ns, 1.0 * ns, 3.0 * ns, 7.0 * ns}) {
    const double expected = std::exp(-(t - 1.0 * ps) / (1.0 * ns));
    EXPECT_NEAR(ra.voltages.get("out").sample(t), expected, 3e-3) << "t=" << t;
  }
  // The long settling tail should be covered in far fewer steps.
  EXPECT_LT(ra.steps, rf.steps / 4);
}

TEST(SpiceTransientAdaptive, InverterDelayMatchesFixedStep) {
  InverterFixture fa(50.0 * fF, true, 8.0);
  fa.add_input_source();
  fa.ckt.set_vsource("VIN", Pwl::step(0.0, fa.tech.vdd, 0.2 * ns, 50.0 * ps));
  Engine eng(fa.ckt);
  TransientOptions fixed;
  fixed.tstop = 4.0 * ns;
  fixed.dt = 1.0 * ps;
  fixed.voltage_probes = {"in", "out"};
  TransientOptions adaptive = fixed;
  adaptive.adaptive = true;
  adaptive.lte_tol = 2e-4;
  const auto rf = eng.run_transient(fixed);
  const auto ra = eng.run_transient(adaptive);
  const auto df = propagation_delay(rf.voltages.get("in"), rf.voltages.get("out"), fa.tech.vdd,
                                    Edge::kRising, Edge::kFalling);
  const auto da = propagation_delay(ra.voltages.get("in"), ra.voltages.get("out"), fa.tech.vdd,
                                    Edge::kRising, Edge::kFalling);
  ASSERT_TRUE(df && da);
  EXPECT_NEAR(*da / *df, 1.0, 0.02);
}

TEST(SpiceTransient, ProbeErrorsAreReported) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V1", a, Pwl::constant(1.0));
  ckt.add_resistor("R1", a, ckt.node("b"), 100.0);
  ckt.add_resistor("R2", ckt.node("b"), kGround, 100.0);
  Engine eng(ckt);
  TransientOptions opt;
  opt.tstop = 1.0 * ns;
  opt.dt = 0.1 * ns;
  opt.voltage_probes = {"does_not_exist"};
  EXPECT_THROW(eng.run_transient(opt), std::invalid_argument);
  opt.voltage_probes = {};
  opt.current_probes = {"no_such_device"};
  EXPECT_THROW(eng.run_transient(opt), std::invalid_argument);
}

TEST(SpiceCircuit, ValidationErrors) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  EXPECT_THROW(ckt.add_resistor("R", a, a, 100.0), std::invalid_argument);
  EXPECT_THROW(ckt.add_resistor("R", a, kGround, -5.0), std::invalid_argument);
  EXPECT_THROW(ckt.add_vsource("V", kGround, Pwl::constant(1.0)), std::invalid_argument);
  ckt.add_vsource("V1", a, Pwl::constant(1.0));
  EXPECT_THROW(ckt.add_vsource("V2", a, Pwl::constant(2.0)), std::invalid_argument);
  EXPECT_THROW(ckt.set_vsource("missing", Pwl::constant(0.0)), std::invalid_argument);
}

TEST(SpiceCircuit, NodeCapMerging) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_node_cap(a, 10.0 * fF);
  ckt.add_node_cap(a, 5.0 * fF);
  ASSERT_EQ(ckt.capacitors().size(), 1u);
  EXPECT_NEAR(ckt.capacitors()[0].capacitance, 15.0 * fF, 1e-20);
}

}  // namespace
}  // namespace mtcmos::spice
