// Tests for crash-safe sweep orchestration (sizing/checkpoint.hpp plus
// the checkpoint/cancellation/watchdog paths of sizing/session.hpp):
// typed record round-trips at full double precision, the persistence
// filter for interruption artifacts, the bind_meta run-configuration
// guard, SizingBounds validation, watchdog requeue semantics, and -- the
// core guarantee -- kill-and-resume merging bit-identically with an
// uninterrupted run on both the switch-level and transistor-level
// backends.

#include "sizing/checkpoint.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "circuits/generators.hpp"
#include "sizing/session.hpp"
#include "sizing/sizing.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace mtcmos {
namespace {

using circuits::make_inverter_tree;
using circuits::make_ripple_adder;
using sizing::BisectState;
using sizing::Checkpoint;
using sizing::checkpoint_item_key;
using sizing::checkpoint_prefix;
using sizing::checkpoint_prefix_nowl;
using sizing::EvalBackend;
using sizing::EvalSession;
using sizing::netlist_fingerprint;
using sizing::SpiceBackend;
using sizing::SpiceBackendOptions;
using sizing::VbsBackend;
using sizing::VectorDelay;
using sizing::VectorPair;
using units::ns;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("checkpoint_test." +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "." +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    faultinject::disarm_all();
    std::filesystem::remove_all(dir_);
  }

  std::string path(const std::string& name = "ckpt.mtj") const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

bool same_pair(const VectorPair& a, const VectorPair& b) {
  return a.v0 == b.v0 && a.v1 == b.v1;
}

std::vector<std::string> adder_outputs(const circuits::RippleAdder& adder) {
  std::vector<std::string> outs;
  for (const auto s : adder.sum) outs.push_back(adder.netlist.net_name(s));
  outs.push_back(adder.netlist.net_name(adder.cout));
  return outs;
}

/// Deterministic pure-function backend with call counters: lets tests
/// assert that a resumed sweep *replays* instead of re-simulating, and
/// (via an injectable hook) make chosen items pathologically slow for the
/// watchdog tests.  The netlist is only identity for fingerprinting.
class FakeBackend : public EvalBackend {
 public:
  FakeBackend(const netlist::Netlist& nl, std::vector<std::string> outputs)
      : nl_(nl), outputs_(std::move(outputs)) {}

  const char* name() const override { return "fake"; }
  const netlist::Netlist& netlist() const override { return nl_; }
  const std::vector<std::string>& outputs() const override { return outputs_; }

  double delay_baseline(const VectorPair& vp) const override {
    ++baseline_calls;
    (void)vp;
    return 1e-9;
  }
  double delay_at_wl(const VectorPair& vp, double wl) const override {
    ++delay_calls;
    if (hook) hook(vp);
    double v = 0.0;
    for (const bool b : vp.v1) v = v * 2.0 + (b ? 1.0 : 0.0);
    for (const bool b : vp.v0) v = v * 2.0 + (b ? 1.0 : 0.0);
    return 1e-9 + v * 1e-12 + 1e-10 / wl;
  }

  mutable std::atomic<int> baseline_calls{0};
  mutable std::atomic<int> delay_calls{0};
  std::function<void(const VectorPair&)> hook;

 private:
  const netlist::Netlist& nl_;
  std::vector<std::string> outputs_;
};

/// n-bit vectors where only item `slow` has v1[0] set (the hook's flag
/// bit); the remaining bits enumerate the index so every key is distinct.
std::vector<VectorPair> flagged_vectors(std::size_t count, std::size_t slow) {
  std::vector<VectorPair> out;
  for (std::size_t i = 0; i < count; ++i) {
    VectorPair vp;
    vp.v0.assign(8, false);
    vp.v1.assign(8, false);
    vp.v1[0] = i == slow;
    for (std::size_t b = 0; b < 7; ++b) vp.v1[b + 1] = ((i >> b) & 1u) != 0;
    out.push_back(std::move(vp));
  }
  return out;
}

// --- Keys and fingerprints ---

TEST_F(CheckpointTest, KeysAreContentDerived) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const auto outs = adder_outputs(adder);
  const std::uint64_t fp = netlist_fingerprint(adder.netlist, outs);
  EXPECT_EQ(fp, netlist_fingerprint(adder.netlist, outs));  // stable
  EXPECT_NE(fp, netlist_fingerprint(adder.netlist, {}));    // outputs matter

  const std::string p1 = checkpoint_prefix("rank", "vbs", fp, 10.0);
  EXPECT_NE(p1, checkpoint_prefix("probe", "vbs", fp, 10.0));
  EXPECT_NE(p1, checkpoint_prefix("rank", "spice", fp, 10.0));
  EXPECT_NE(p1, checkpoint_prefix("rank", "vbs", fp, 10.5));
  EXPECT_NE(p1, checkpoint_prefix_nowl("rank", "vbs", fp));

  const VectorPair a{{false, true}, {true, false}};
  const VectorPair b{{false, true}, {true, true}};
  EXPECT_NE(checkpoint_item_key(p1, a), checkpoint_item_key(p1, b));
  EXPECT_EQ(checkpoint_item_key(p1, a), checkpoint_item_key(p1, a));
}

// --- Typed record round-trips ---

TEST_F(CheckpointTest, DoubleOutcomeRoundTripsToTheLastUlp) {
  Checkpoint ckpt;
  ckpt.open(path());
  const double values[] = {0.1 + 0.2, 1e-300, -0.0, 3.5e9, 1.0 / 3.0};
  int i = 0;
  for (const double v : values) {
    const std::string key = "k" + std::to_string(i++);
    ckpt.record(key, Outcome<double>::success(v, 2));
    Outcome<double> back;
    ASSERT_TRUE(ckpt.lookup(key, back)) << key;
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(*back.value), std::bit_cast<std::uint64_t>(v));
    EXPECT_EQ(back.attempts, 2);
  }
  // And across a close/reopen cycle (i.e. through the on-disk format).
  Checkpoint resumed;
  resumed.open(path());
  Outcome<double> back;
  ASSERT_TRUE(resumed.lookup("k0", back));
  EXPECT_EQ(*back.value, 0.1 + 0.2);
}

TEST_F(CheckpointTest, VectorDelayOutcomeRoundTrips) {
  Checkpoint ckpt;
  ckpt.open(path());
  VectorDelay vd;
  vd.pair = {{true, false}, {false, true}};
  vd.delay_cmos = 1.25e-9;
  vd.delay_mtcmos = 1.5e-9;
  vd.degradation_pct = 20.0;
  ckpt.record("vd", Outcome<VectorDelay>::success(vd, 1));
  Outcome<VectorDelay> back;
  ASSERT_TRUE(ckpt.lookup("vd", back));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value->delay_cmos, vd.delay_cmos);
  EXPECT_EQ(back.value->delay_mtcmos, vd.delay_mtcmos);
  EXPECT_EQ(back.value->degradation_pct, vd.degradation_pct);
  // The transition is part of the *key*, not the record: the sweep
  // re-attaches it after lookup.
  EXPECT_TRUE(back.value->pair.v0.empty());
}

TEST_F(CheckpointTest, FailureOutcomeRoundTripsWithSiteAndContext) {
  Checkpoint ckpt;
  ckpt.open(path());
  FailureInfo info;
  info.code = FailureCode::kNewtonDiverged;
  info.site = "spice::newton";
  info.context = "diverged after 40 iterations, with spaces";
  info.attempts = 2;
  ckpt.record("f", Outcome<double>::fail(info));
  Outcome<double> back;
  ASSERT_TRUE(ckpt.lookup("f", back));
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.failure.code, FailureCode::kNewtonDiverged);
  EXPECT_EQ(back.failure.site, info.site);
  EXPECT_EQ(back.failure.context, info.context);
  EXPECT_EQ(back.failure.attempts, 2);
}

TEST_F(CheckpointTest, BisectStateRoundTrips) {
  Checkpoint ckpt;
  ckpt.open(path());
  const BisectState s{3, 1.5, 800.0, 4.75, 17, 9};
  ckpt.record_bisect("bs", s);
  BisectState back;
  ASSERT_TRUE(ckpt.lookup_bisect("bs", back));
  EXPECT_EQ(back.phase, 3);
  EXPECT_EQ(back.lo, 1.5);
  EXPECT_EQ(back.hi, 800.0);
  EXPECT_EQ(back.hi_deg, 4.75);
  EXPECT_EQ(back.hi_idx, 17u);
  EXPECT_EQ(back.probes, 9u);
  EXPECT_FALSE(ckpt.lookup_bisect("other", back));
}

TEST_F(CheckpointTest, InterruptionArtifactsAreNeverPersisted) {
  FailureInfo cancelled{FailureCode::kCancelled, "sizing::sweep_item", "ctrl-c"};
  FailureInfo session_deadline{FailureCode::kDeadlineExceeded, "sizing::sweep_item", "late"};
  FailureInfo watchdog{FailureCode::kDeadlineExceeded, "sizing::watchdog", "slow"};
  FailureInfo engine_deadline{FailureCode::kDeadlineExceeded, "spice::transient", "wall"};
  FailureInfo diverged{FailureCode::kNewtonDiverged, "spice::newton", "boom"};
  EXPECT_FALSE(Checkpoint::should_persist(cancelled));
  EXPECT_FALSE(Checkpoint::should_persist(session_deadline));
  EXPECT_FALSE(Checkpoint::should_persist(watchdog));
  EXPECT_TRUE(Checkpoint::should_persist(engine_deadline));
  EXPECT_TRUE(Checkpoint::should_persist(diverged));

  Checkpoint ckpt;
  ckpt.open(path());
  ckpt.record("c", Outcome<double>::fail(cancelled));
  ckpt.record("w", Outcome<double>::fail(watchdog));
  ckpt.record("d", Outcome<double>::fail(diverged));
  Outcome<double> back;
  EXPECT_FALSE(ckpt.lookup("c", back));
  EXPECT_FALSE(ckpt.lookup("w", back));
  EXPECT_TRUE(ckpt.lookup("d", back));
}

TEST_F(CheckpointTest, UnarmedCheckpointIsInert) {
  Checkpoint ckpt;  // never opened
  EXPECT_FALSE(ckpt.armed());
  ckpt.record("k", Outcome<double>::success(1.0, 1));
  ckpt.bind_meta("target", "5.0");
  Outcome<double> back;
  EXPECT_FALSE(ckpt.lookup("k", back));
}

// --- Run-configuration guard ---

TEST_F(CheckpointTest, BindMetaRejectsAResumeWithDifferentConfiguration) {
  {
    Checkpoint ckpt;
    ckpt.open(path());
    ckpt.bind_meta("target", "5.0");
    ckpt.bind_meta("target", "5.0");  // identical re-bind is fine
  }
  Checkpoint resumed;
  resumed.open(path());
  resumed.bind_meta("target", "5.0");
  try {
    resumed.bind_meta("target", "7.5");
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.info().code, FailureCode::kInvalidArgument);
    EXPECT_NE(e.info().context.find("target"), std::string::npos);
  }
}

// --- SizingBounds validation (coded, not stringly) ---

TEST_F(CheckpointTest, DegenerateSizingBoundsFailWithInvalidArgument) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);
  const sizing::SizingBounds bad[] = {
      {-1.0, 4000.0, 0.5},                                      // wl_min <= 0
      {0.0, 4000.0, 0.5},                                       // wl_min == 0
      {10.0, 10.0, 0.5},                                        // wl_max == wl_min
      {10.0, 5.0, 0.5},                                         // inverted interval
      {1.0, 4000.0, 0.0},                                       // wl_tol == 0
      {1.0, std::numeric_limits<double>::infinity(), 0.5},      // non-finite
      {std::numeric_limits<double>::quiet_NaN(), 4000.0, 0.5},  // NaN
  };
  for (const auto& bounds : bad) {
    try {
      sizing::size_for_degradation(vbs, vectors, 5.0, bounds);
      FAIL() << "expected NumericalError for wl_min=" << bounds.wl_min
             << " wl_max=" << bounds.wl_max << " wl_tol=" << bounds.wl_tol;
    } catch (const NumericalError& e) {
      EXPECT_EQ(e.info().code, FailureCode::kInvalidArgument);
      EXPECT_EQ(e.info().site, "sizing::size_for_degradation");
    }
  }
}

// --- Replay skips simulation ---

TEST_F(CheckpointTest, ResumedRankReplaysWithoutSimulating) {
  const auto adder = make_ripple_adder(tech07(), 1);
  const auto outs = adder_outputs(adder);
  const auto vectors = flagged_vectors(24, /*slow=*/999);  // no slow item

  std::vector<VectorDelay> first;
  {
    FakeBackend fake(adder.netlist, outs);
    Checkpoint ckpt;
    ckpt.open(path());
    EvalSession session;
    session.checkpoint = &ckpt;
    first = sizing::rank_vectors(fake, vectors, 10.0, session);
    EXPECT_EQ(fake.delay_calls.load(), 24);
    EXPECT_EQ(ckpt.journal().size(), 24u);
  }
  FakeBackend fake(adder.netlist, outs);
  Checkpoint resumed;
  resumed.open(path());
  EXPECT_EQ(resumed.journal().replayed_records(), 24u);
  EvalSession session;
  session.checkpoint = &resumed;
  const auto second = sizing::rank_vectors(fake, vectors, 10.0, session);
  EXPECT_EQ(fake.delay_calls.load(), 0);  // every item replayed from disk
  EXPECT_EQ(fake.baseline_calls.load(), 0);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(same_pair(first[i].pair, second[i].pair)) << i;
    EXPECT_EQ(first[i].delay_cmos, second[i].delay_cmos) << i;
    EXPECT_EQ(first[i].delay_mtcmos, second[i].delay_mtcmos) << i;
    EXPECT_EQ(first[i].degradation_pct, second[i].degradation_pct) << i;
  }
}

// --- Kill and resume, bit-identically ---

TEST_F(CheckpointTest, KilledRankResumesBitIdenticallyOnVbs) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const auto outs = adder_outputs(adder);
  const VbsBackend vbs(adder.netlist, outs);
  const auto vectors = sizing::all_vector_pairs(4);
  const auto reference = sizing::rank_vectors(vbs, vectors, 10.0);

  // "Crash": the journal append of item 100 throws, tearing down the
  // sweep mid-run exactly where a SIGKILL would leave it -- some items
  // journaled, the rest not.
  Checkpoint killed;
  killed.open(path());
  EvalSession session;
  session.checkpoint = &killed;
  faultinject::arm(faultinject::Site::kJournalAppend, /*scope=*/100, /*fail_hits=*/1);
  EXPECT_THROW(sizing::rank_vectors(vbs, vectors, 10.0, session), NumericalError);
  faultinject::disarm_all();
  EXPECT_LT(killed.journal().size(), vectors.size());
  killed.journal().close();

  // Resume against the same journal: results and report are bit-identical
  // to the never-interrupted (and never-checkpointed) run.
  Checkpoint resumed;
  resumed.open(path());
  SweepReport report;
  EvalSession resume_session;
  resume_session.checkpoint = &resumed;
  resume_session.report = &report;
  const auto merged = sizing::rank_vectors(vbs, vectors, 10.0, resume_session);
  EXPECT_EQ(report.succeeded + report.recovered, vectors.size());
  EXPECT_EQ(report.failed, 0u);
  ASSERT_EQ(merged.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_TRUE(same_pair(merged[i].pair, reference[i].pair)) << i;
    EXPECT_EQ(merged[i].delay_cmos, reference[i].delay_cmos) << i;
    EXPECT_EQ(merged[i].delay_mtcmos, reference[i].delay_mtcmos) << i;
    EXPECT_EQ(merged[i].degradation_pct, reference[i].degradation_pct) << i;
  }
}

TEST_F(CheckpointTest, KilledSizingResumesBitIdenticallyOnVbs) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const auto outs = adder_outputs(adder);
  const VbsBackend vbs(adder.netlist, outs);
  const auto vectors = sizing::all_vector_pairs(4);
  const auto reference = sizing::size_for_degradation(vbs, vectors, 5.0);

  Checkpoint killed;
  killed.open(path());
  EvalSession session;
  session.checkpoint = &killed;
  faultinject::arm(faultinject::Site::kJournalAppend, /*scope=*/3, /*fail_hits=*/1);
  EXPECT_THROW(sizing::size_for_degradation(vbs, vectors, 5.0, {}, session), NumericalError);
  faultinject::disarm_all();
  killed.journal().close();

  Checkpoint resumed;
  resumed.open(path());
  EvalSession resume_session;
  resume_session.checkpoint = &resumed;
  const auto merged = sizing::size_for_degradation(vbs, vectors, 5.0, {}, resume_session);
  EXPECT_EQ(merged.wl, reference.wl);
  EXPECT_EQ(merged.degradation_pct, reference.degradation_pct);
  EXPECT_TRUE(same_pair(merged.binding_vector, reference.binding_vector));

  // The bisection-state record tracked the run to completion.
  const std::uint64_t fp = netlist_fingerprint(adder.netlist, outs);
  const sizing::SizingBounds bounds;
  BisectState state;
  ASSERT_TRUE(resumed.lookup_bisect(
      checkpoint_prefix_nowl("bisect", vbs.name(),
                             sizing::sizing_args_hash(fp, vbs.name(), vectors, 5.0,
                                                      bounds.wl_min, bounds.wl_max,
                                                      bounds.wl_tol)),
      state));
  EXPECT_EQ(state.phase, 3);
  EXPECT_LE(state.hi - state.lo, bounds.wl_tol);
}

TEST_F(CheckpointTest, KilledRankResumesBitIdenticallyOnSpice) {
  circuits::InverterTreeOptions topt;
  topt.fanout = 1;
  topt.stages = 2;
  const auto chain = make_inverter_tree(tech07(), topt);
  const std::string leaf = chain.netlist.net_name(chain.leaves[0]);
  SpiceBackendOptions sopt;
  sopt.tstop = 8.0 * ns;
  const SpiceBackend spice(chain.netlist, {leaf}, sopt);
  const auto vectors = sizing::all_vector_pairs(1);
  const auto reference = sizing::rank_vectors(spice, vectors, 10.0);

  Checkpoint killed;
  killed.open(path());
  EvalSession session;
  session.checkpoint = &killed;
  faultinject::arm(faultinject::Site::kJournalAppend, /*scope=*/2, /*fail_hits=*/1);
  EXPECT_THROW(sizing::rank_vectors(spice, vectors, 10.0, session), NumericalError);
  faultinject::disarm_all();
  killed.journal().close();

  Checkpoint resumed;
  resumed.open(path());
  SweepReport report;
  EvalSession resume_session;
  resume_session.checkpoint = &resumed;
  resume_session.report = &report;
  const auto merged = sizing::rank_vectors(spice, vectors, 10.0, resume_session);
  EXPECT_EQ(report.succeeded + report.recovered, vectors.size());
  ASSERT_EQ(merged.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_TRUE(same_pair(merged[i].pair, reference[i].pair)) << i;
    EXPECT_EQ(merged[i].delay_cmos, reference[i].delay_cmos) << i;
    EXPECT_EQ(merged[i].delay_mtcmos, reference[i].delay_mtcmos) << i;
    EXPECT_EQ(merged[i].degradation_pct, reference[i].degradation_pct) << i;
  }
}

// --- Cancellation ---

TEST_F(CheckpointTest, CancelledItemsAreReportedButNeverJournaled) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);

  util::CancelToken token;
  token.request();  // raised before the sweep starts
  Checkpoint ckpt;
  ckpt.open(path());
  SweepReport report;
  EvalSession session;
  session.cancel_token = &token;
  session.checkpoint = &ckpt;
  session.report = &report;
  const auto ranked = sizing::rank_vectors(vbs, vectors, 10.0, session);
  EXPECT_TRUE(ranked.empty());
  EXPECT_EQ(report.failed, vectors.size());
  for (const auto& [index, failure] : report.failures) {
    EXPECT_EQ(failure.code, FailureCode::kCancelled) << index;
  }
  // Cancellations are interruption artifacts: the journal stays empty, so
  // a resume re-runs every item instead of replaying the Ctrl-C.
  EXPECT_EQ(ckpt.journal().size(), 0u);
}

TEST_F(CheckpointTest, AllCancelledSizingSurfacesKCancelled) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  util::CancelToken token;
  token.request();
  EvalSession session;
  session.cancel_token = &token;
  try {
    sizing::size_for_degradation(vbs, sizing::all_vector_pairs(4), 5.0, {}, session);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.info().code, FailureCode::kCancelled);
  }
}

TEST_F(CheckpointTest, RecoveryLadderHonorsThePolicyToken) {
  circuits::InverterTreeOptions topt;
  topt.fanout = 1;
  topt.stages = 2;
  const auto chain = make_inverter_tree(tech07(), topt);
  const std::string leaf = chain.netlist.net_name(chain.leaves[0]);
  util::CancelToken token;
  SpiceBackendOptions sopt;
  sopt.tstop = 8.0 * ns;
  sopt.recovery.cancel = &token;
  const SpiceBackend spice(chain.netlist, {leaf}, sopt);
  const VectorPair vp{{false}, {true}};
  EXPECT_GT(spice.measure_at_wl(vp, 10.0).delay, 0.0);  // token down: normal
  token.request();
  const auto r = spice.measure_at_wl(vp, 20.0);  // uncached W/L
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.failure.code, FailureCode::kCancelled);
}

// --- Watchdog ---

TEST_F(CheckpointTest, WatchdogFailsAPathologicallySlowItemAfterOneRequeue) {
  const auto adder = make_ripple_adder(tech07(), 1);
  const auto outs = adder_outputs(adder);
  FakeBackend fake(adder.netlist, outs);
  const std::size_t slow = 17;
  const auto vectors = flagged_vectors(20, slow);
  fake.hook = [](const VectorPair& vp) {
    if (vp.v1[0]) std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };

  util::ThreadPool serial(1);  // deterministic order: median is warm by item 17
  SweepReport report;
  EvalSession session;
  session.pool = &serial;
  session.report = &report;
  session.watchdog.multiple = 3.0;
  session.watchdog.min_samples = 8;
  session.watchdog.floor_s = 0.001;
  const auto ranked = sizing::rank_vectors(fake, vectors, 10.0, session);
  EXPECT_EQ(ranked.size(), vectors.size() - 1);
  EXPECT_EQ(report.failed, 1u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].first, slow);
  EXPECT_EQ(report.failures[0].second.code, FailureCode::kDeadlineExceeded);
  EXPECT_EQ(report.failures[0].second.site, "sizing::watchdog");
  // One requeue: the slow item ran exactly twice before failing.
  EXPECT_EQ(fake.delay_calls.load(), static_cast<int>(vectors.size() + 1));
}

TEST_F(CheckpointTest, WatchdogRequeueRecoversATransientlySlowItem) {
  const auto adder = make_ripple_adder(tech07(), 1);
  const auto outs = adder_outputs(adder);
  FakeBackend fake(adder.netlist, outs);
  const std::size_t slow = 17;
  const auto vectors = flagged_vectors(20, slow);
  std::atomic<bool> already_slowed{false};
  fake.hook = [&already_slowed](const VectorPair& vp) {
    if (vp.v1[0] && !already_slowed.exchange(true)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  };

  util::ThreadPool serial(1);
  SweepReport report;
  EvalSession session;
  session.pool = &serial;
  session.report = &report;
  session.watchdog.multiple = 3.0;
  session.watchdog.min_samples = 8;
  session.watchdog.floor_s = 0.001;
  const auto ranked = sizing::rank_vectors(fake, vectors, 10.0, session);
  EXPECT_EQ(ranked.size(), vectors.size());  // nothing lost
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.recovered, 1u);  // succeeded on the requeued attempt
  EXPECT_EQ(report.succeeded, vectors.size() - 1);
}

TEST_F(CheckpointTest, WatchdogFailuresAreNotJournaled) {
  const auto adder = make_ripple_adder(tech07(), 1);
  const auto outs = adder_outputs(adder);
  FakeBackend fake(adder.netlist, outs);
  const std::size_t slow = 17;
  const auto vectors = flagged_vectors(20, slow);
  fake.hook = [](const VectorPair& vp) {
    if (vp.v1[0]) std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };

  util::ThreadPool serial(1);
  Checkpoint ckpt;
  ckpt.open(path());
  SweepReport report;
  EvalSession session;
  session.pool = &serial;
  session.report = &report;
  session.checkpoint = &ckpt;
  session.watchdog.multiple = 3.0;
  session.watchdog.min_samples = 8;
  session.watchdog.floor_s = 0.001;
  (void)sizing::rank_vectors(fake, vectors, 10.0, session);
  ASSERT_EQ(report.failed, 1u);
  // 19 successes journaled; the watchdog verdict is timing-dependent, so
  // it is re-run on resume rather than replayed.
  EXPECT_EQ(ckpt.journal().size(), vectors.size() - 1);
}

}  // namespace
}  // namespace mtcmos
