// Tests for the gate-level netlist: SpExpr algebra, cell helpers, logic
// evaluation, equivalent-inverter reduction, and transistor expansion.

#include <gtest/gtest.h>

#include "models/technology.hpp"
#include "netlist/bits.hpp"
#include "netlist/expand.hpp"
#include "netlist/netlist.hpp"
#include "netlist/sp_expr.hpp"
#include "spice/engine.hpp"
#include "util/units.hpp"
#include "waveform/measure.hpp"

namespace mtcmos::netlist {
namespace {

using mtcmos::units::fF;
using mtcmos::units::ns;
using mtcmos::units::ps;

// --- SpExpr ---

TEST(SpExpr, InputConducts) {
  const SpExpr e = SpExpr::input(0);
  EXPECT_TRUE(e.conducts({true}));
  EXPECT_FALSE(e.conducts({false}));
  EXPECT_EQ(e.max_depth(), 1);
  EXPECT_EQ(e.transistor_count(), 1);
  EXPECT_EQ(e.top_adjacency(), 1);
}

TEST(SpExpr, SeriesIsAnd) {
  const SpExpr e = SpExpr::series({SpExpr::input(0), SpExpr::input(1)});
  EXPECT_TRUE(e.conducts({true, true}));
  EXPECT_FALSE(e.conducts({true, false}));
  EXPECT_FALSE(e.conducts({false, true}));
  EXPECT_EQ(e.max_depth(), 2);
  EXPECT_EQ(e.top_adjacency(), 1);
}

TEST(SpExpr, ParallelIsOr) {
  const SpExpr e = SpExpr::parallel({SpExpr::input(0), SpExpr::input(1)});
  EXPECT_TRUE(e.conducts({true, false}));
  EXPECT_TRUE(e.conducts({false, true}));
  EXPECT_FALSE(e.conducts({false, false}));
  EXPECT_EQ(e.max_depth(), 1);
  EXPECT_EQ(e.top_adjacency(), 2);
}

TEST(SpExpr, DualSwapsSeriesParallel) {
  const SpExpr e = SpExpr::series({SpExpr::input(0), SpExpr::input(1)});
  const SpExpr d = e.dual();
  // Dual of AND-conduction is OR-conduction over the same literals.
  EXPECT_TRUE(d.conducts({true, false}));
  EXPECT_EQ(d.max_depth(), 1);
  EXPECT_EQ(d.transistor_count(), 2);
}

TEST(SpExpr, DualIsInvolution) {
  const SpExpr e = SpExpr::parallel(
      {SpExpr::series({SpExpr::input(0), SpExpr::input(1)}),
       SpExpr::series({SpExpr::parallel({SpExpr::input(0), SpExpr::input(1)}), SpExpr::input(2)})});
  const SpExpr dd = e.dual().dual();
  for (int v = 0; v < 8; ++v) {
    const std::vector<bool> pins = {(v & 1) != 0, (v & 2) != 0, (v & 4) != 0};
    EXPECT_EQ(e.conducts(pins), dd.conducts(pins)) << "v=" << v;
  }
}

TEST(SpExpr, DeMorganDuality) {
  // For a series-parallel network, NOT(dual conducts on inputs) ==
  // (original conducts on complemented inputs).
  const SpExpr e = SpExpr::parallel(
      {SpExpr::series({SpExpr::input(0), SpExpr::input(1)}), SpExpr::input(2)});
  const SpExpr d = e.dual();
  for (int v = 0; v < 8; ++v) {
    const std::vector<bool> pins = {(v & 1) != 0, (v & 2) != 0, (v & 4) != 0};
    const std::vector<bool> inv = {!pins[0], !pins[1], !pins[2]};
    EXPECT_EQ(!d.conducts(pins), e.conducts(inv)) << "v=" << v;
  }
}

TEST(SpExpr, PinCountAndMaxPin) {
  const SpExpr e = SpExpr::parallel(
      {SpExpr::series({SpExpr::input(0), SpExpr::input(1)}),
       SpExpr::series({SpExpr::parallel({SpExpr::input(0), SpExpr::input(1)}), SpExpr::input(2)})});
  EXPECT_EQ(e.pin_count(0), 2);
  EXPECT_EQ(e.pin_count(1), 2);
  EXPECT_EQ(e.pin_count(2), 1);
  EXPECT_EQ(e.max_pin(), 2);
  EXPECT_EQ(e.transistor_count(), 5);  // the mirror-adder carry network
}

TEST(SpExpr, ExpandCountsTransistorsAndInternalNodes) {
  const SpExpr e = SpExpr::series({SpExpr::input(0), SpExpr::input(1), SpExpr::input(2)});
  int transistors = 0;
  int next_node = 100;
  e.expand(
      1, 2, [&](int, int, int) { ++transistors; }, [&]() { return next_node++; });
  EXPECT_EQ(transistors, 3);
  EXPECT_EQ(next_node, 102);  // two internal nodes for a 3-stack
}

TEST(SpExpr, SingleChildCollapses) {
  const SpExpr e = SpExpr::series({SpExpr::input(3)});
  EXPECT_EQ(e.max_depth(), 1);
  EXPECT_EQ(e.max_pin(), 3);
}

// --- Bits ---

TEST(Bits, RoundTrip) {
  for (std::uint64_t v : {0ull, 1ull, 0x81ull, 0xFFull}) {
    EXPECT_EQ(uint_from_bits(bits_from_uint(v, 8)), v);
  }
}

TEST(Bits, LsbFirst) {
  const auto bits = bits_from_uint(0x01, 8);
  EXPECT_TRUE(bits[0]);
  EXPECT_FALSE(bits[7]);
}

TEST(Bits, Concat) {
  const auto xy = concat_bits(bits_from_uint(0x3, 2), bits_from_uint(0x0, 2));
  EXPECT_EQ(xy.size(), 4u);
  EXPECT_TRUE(xy[0]);
  EXPECT_TRUE(xy[1]);
  EXPECT_FALSE(xy[2]);
}

// --- Netlist construction & evaluation ---

TEST(Netlist, InverterEvaluation) {
  Netlist nl(tech07());
  const NetId in = nl.add_input("a");
  const NetId out = nl.add_inv("inv", in);
  auto v = nl.evaluate({false});
  EXPECT_TRUE(v[static_cast<std::size_t>(out)]);
  v = nl.evaluate({true});
  EXPECT_FALSE(v[static_cast<std::size_t>(out)]);
}

TEST(Netlist, Nand2Nor2TruthTables) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId nand_out = nl.add_nand2("nand", a, b);
  const NetId nor_out = nl.add_nor2("nor", a, b);
  for (int v = 0; v < 4; ++v) {
    const bool av = (v & 1) != 0;
    const bool bv = (v & 2) != 0;
    const auto vals = nl.evaluate({av, bv});
    EXPECT_EQ(vals[static_cast<std::size_t>(nand_out)], !(av && bv));
    EXPECT_EQ(vals[static_cast<std::size_t>(nor_out)], !(av || bv));
  }
}

TEST(Netlist, And2IsTwoGates) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId out = nl.add_and2("and", a, b);
  EXPECT_EQ(nl.gate_count(), 2);
  const auto vals = nl.evaluate({true, true});
  EXPECT_TRUE(vals[static_cast<std::size_t>(out)]);
}

TEST(Netlist, MirrorFaTruthTable) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId ci = nl.add_input("ci");
  const auto fa = nl.add_mirror_fa("fa", a, b, ci);
  for (int v = 0; v < 8; ++v) {
    const bool av = (v & 1) != 0, bv = (v & 2) != 0, cv = (v & 4) != 0;
    const auto vals = nl.evaluate({av, bv, cv});
    const int total = static_cast<int>(av) + static_cast<int>(bv) + static_cast<int>(cv);
    EXPECT_EQ(vals[static_cast<std::size_t>(fa.sum)], (total & 1) != 0) << "v=" << v;
    EXPECT_EQ(vals[static_cast<std::size_t>(fa.cout)], total >= 2) << "v=" << v;
  }
}

TEST(Netlist, MirrorFaIs28Transistors) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId ci = nl.add_input("ci");
  nl.add_mirror_fa("fa", a, b, ci);
  EXPECT_EQ(nl.transistor_count(), 28);  // paper: "3 x 28 transistors" at 3 bits
}

TEST(Netlist, UndrivenNetIsConstantZero) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId zero = nl.net("tied_low");
  const NetId out = nl.add_nand2("nand", a, zero);
  const auto vals = nl.evaluate({true});
  EXPECT_TRUE(vals[static_cast<std::size_t>(out)]);  // NAND(x, 0) = 1
}

TEST(Netlist, DriveConflictsRejected) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId out = nl.add_inv("inv1", a);
  EXPECT_THROW(nl.add_gate("inv2", SpExpr::input(0), {a}, out), std::invalid_argument);
  EXPECT_THROW(nl.add_gate("bad", SpExpr::input(0), {a}, a), std::invalid_argument);
  EXPECT_THROW(nl.add_input("a"), std::invalid_argument);
}

TEST(Netlist, ExprPinBeyondFaninsRejected) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId out = nl.net("out");
  EXPECT_THROW(nl.add_gate("g", SpExpr::input(1), {a}, out), std::invalid_argument);
}

TEST(Netlist, DriverAndFanoutQueries) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId n1 = nl.add_inv("g1", a);
  nl.add_inv("g2", n1);
  nl.add_inv("g3", n1);
  EXPECT_EQ(nl.driver_of(a), -1);
  EXPECT_EQ(nl.driver_of(n1), 0);
  const auto& fo = nl.fanout_of(n1);
  EXPECT_EQ(fo.size(), 2u);
  EXPECT_EQ(nl.fanout_of(nl.gate(1).output).size(), 0u);
}

TEST(Expand, ExtraVirtualGroundCapDampsBounceAtTransistorLevel) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId out = nl.add_inv("inv", a);
  nl.add_load(out, 100.0 * fF);
  auto vx_peak = [&](double cx) {
    ExpandOptions opt;
    opt.sleep_wl = 4.0;
    opt.extra_virtual_ground_cap = cx;
    auto ex = to_spice(nl, opt, {false}, {true});
    spice::Engine eng(ex.circuit);
    spice::TransientOptions topt;
    topt.tstop = 6.0 * ns;
    topt.dt = 2.0 * ps;
    topt.voltage_probes = {"vgnd"};
    return eng.run_transient(topt).voltages.get("vgnd").max_value();
  };
  EXPECT_LT(vx_peak(2.0e-12), 0.6 * vx_peak(0.0));
}

TEST(Expand, SleepModeFloatsVirtualGround) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  nl.add_inv("inv", a);
  ExpandOptions opt;
  opt.sleep_on = false;
  auto ex = to_spice(nl, opt, {true}, {true});
  spice::Engine eng(ex.circuit);
  const auto v = eng.dc_operating_point(1.0);
  // With the sleep FET off and the inverter input high (NMOS on), the
  // virtual ground floats up toward the output-low level's source.
  EXPECT_GT(v[static_cast<std::size_t>(*ex.circuit.find_node("vgnd"))], 0.3);
}

TEST(Expand, RailResistanceCreatesTapChainAndGradient) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  for (int k = 0; k < 4; ++k) {
    nl.add_load(nl.add_inv("g" + std::to_string(k), a), 60.0 * fF);
  }
  ExpandOptions opt;
  opt.sleep_wl = 6.0;
  opt.rail_resistance = 100.0;
  auto ex = to_spice(nl, opt, {false}, {true});
  // 4 rail resistors chained off the sleep node.
  int rails = 0;
  for (const auto& r : ex.circuit.resistors()) {
    if (r.name.rfind("Rrail", 0) == 0) ++rails;
  }
  EXPECT_EQ(rails, 4);
  // During simultaneous discharge, the far tap bounces at least as high
  // as the near tap (monotone IR gradient along the rail).
  spice::Engine eng(ex.circuit);
  spice::TransientOptions topt;
  topt.tstop = 8.0 * ns;
  topt.dt = 2.0 * ps;
  topt.voltage_probes = {"vgnd_t0", "vgnd_t3"};
  const auto res = eng.run_transient(topt);
  EXPECT_GT(res.voltages.get("vgnd_t3").max_value(),
            res.voltages.get("vgnd_t0").max_value() * 1.02);
}

TEST(Expand, ZeroRailResistanceKeepsSharedNode) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  nl.add_inv("g0", a);
  ExpandOptions opt;
  opt.rail_resistance = 0.0;
  auto ex = to_spice(nl, opt, {false}, {true});
  for (const auto& r : ex.circuit.resistors()) {
    EXPECT_NE(r.name.rfind("Rrail", 0), 0u) << "no rail resistors expected";
  }
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId n1 = nl.add_inv("g1", a);
  const NetId n2 = nl.add_inv("g2", n1);
  nl.add_inv("g3", n2);
  const auto order = nl.topo_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_LT(std::find(order.begin(), order.end(), 0) - order.begin(),
            std::find(order.begin(), order.end(), 1) - order.begin());
  EXPECT_LT(std::find(order.begin(), order.end(), 1) - order.begin(),
            std::find(order.begin(), order.end(), 2) - order.begin());
}

TEST(Netlist, ExtendedCellTruthTables) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const NetId or2 = nl.add_or2("or2", a, b);
  const NetId buf = nl.add_buf("buf", a);
  const NetId nand3 = nl.add_nand3("nand3", a, b, c);
  const NetId nor3 = nl.add_nor3("nor3", a, b, c);
  const NetId aoi = nl.add_aoi21("aoi", a, b, c);
  const NetId oai = nl.add_oai21("oai", a, b, c);
  const NetId xor2 = nl.add_xor2("xor2", a, b);
  const NetId xnor2 = nl.add_xnor2("xnor2", a, b);
  for (int v = 0; v < 8; ++v) {
    const bool av = (v & 1) != 0, bv = (v & 2) != 0, cv = (v & 4) != 0;
    const auto vals = nl.evaluate({av, bv, cv});
    auto val = [&](NetId n) { return vals[static_cast<std::size_t>(n)]; };
    EXPECT_EQ(val(or2), av || bv) << v;
    EXPECT_EQ(val(buf), av) << v;
    EXPECT_EQ(val(nand3), !(av && bv && cv)) << v;
    EXPECT_EQ(val(nor3), !(av || bv || cv)) << v;
    EXPECT_EQ(val(aoi), !((av && bv) || cv)) << v;
    EXPECT_EQ(val(oai), !((av || bv) && cv)) << v;
    EXPECT_EQ(val(xor2), av != bv) << v;
    EXPECT_EQ(val(xnor2), av == bv) << v;
  }
}

TEST(Netlist, ExtendedCellTransistorCounts) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  nl.add_aoi21("aoi", a, b, c);
  EXPECT_EQ(nl.transistor_count(), 6);  // single complementary gate
  nl.add_xor2("xor2", a, b);
  EXPECT_EQ(nl.transistor_count(), 6 + 16);  // four NAND2
}

TEST(Netlist, Aoi21StackDepths) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  nl.add_aoi21("aoi", a, b, c);
  const Gate& g = nl.gate(0);
  EXPECT_EQ(g.pulldown.max_depth(), 2);         // a-b series branch
  EXPECT_EQ(g.pulldown.dual().max_depth(), 2);  // PMOS: series(parallel(a,b), c)
}

TEST(Netlist, ExtendedCellsExpandAndSolve) {
  // DC-check AOI21 and XOR2 against logic through the sleep FET.
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const NetId aoi = nl.add_aoi21("aoi", a, b, c);
  const NetId x = nl.add_xor2("xor2", a, b);
  ExpandOptions opt;
  opt.sleep_wl = 15.0;
  for (int v = 0; v < 8; ++v) {
    const std::vector<bool> in = {(v & 1) != 0, (v & 2) != 0, (v & 4) != 0};
    auto ex = to_spice(nl, opt, in, in);
    spice::Engine eng(ex.circuit);
    const auto volts = eng.dc_operating_point(1.0);
    const auto logic = nl.evaluate(in);
    for (const NetId n : {aoi, x}) {
      const double vn = volts[static_cast<std::size_t>(*ex.circuit.find_node(nl.net_name(n)))];
      EXPECT_EQ(vn > 0.6, logic[static_cast<std::size_t>(n)])
          << "net " << nl.net_name(n) << " v=" << v << " vn=" << vn;
    }
  }
}

// --- Equivalent-inverter reduction ---

TEST(Netlist, BetaEffDeratedByStackDepth) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.add_inv("inv", a);            // gate 0: depth 1
  nl.add_nand2("nand", a, b);      // gate 1: NMOS depth 2
  nl.add_nor2("nor", a, b);        // gate 2: NMOS depth 1, PMOS depth 2
  EXPECT_NEAR(nl.beta_n_eff(1) / nl.beta_n_eff(0), 0.5, 1e-12);
  EXPECT_NEAR(nl.beta_n_eff(2) / nl.beta_n_eff(0), 1.0, 1e-12);
  EXPECT_NEAR(nl.beta_p_eff(2) / nl.beta_p_eff(0), 0.5, 1e-12);
}

TEST(Netlist, InputCapCountsPinOccurrences) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId ci = nl.add_input("ci");
  nl.add_mirror_fa("fa", a, b, ci);
  // Carry gate (index 0): pin 0 (= a) appears twice in the 5T network.
  const Technology& t = nl.tech();
  const Gate& carry = nl.gate(0);
  EXPECT_NEAR(nl.input_cap(0, 0),
              2.0 * t.cox * t.lmin * (carry.wn + carry.wp), 1e-20);
  EXPECT_NEAR(nl.input_cap(0, 2),
              1.0 * t.cox * t.lmin * (carry.wn + carry.wp), 1e-20);
}

TEST(Netlist, OutputLoadSumsFanoutAndJunctions) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId n1 = nl.add_inv("g1", a);
  nl.add_inv("g2", n1);
  nl.add_inv("g3", n1);
  nl.add_load(n1, 10.0 * fF);
  const Technology& t = nl.tech();
  const Gate& g1 = nl.gate(0);
  const double fanout_caps = 2.0 * t.cox * t.lmin * (g1.wn + g1.wp);
  const double junction = t.junction_cap(g1.wn) + t.junction_cap(g1.wp);
  EXPECT_NEAR(nl.output_load(0), 10.0 * fF + fanout_caps + junction, 1e-20);
}

TEST(Netlist, TotalNmosWidthBaseline) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.add_nand2("nand", a, b);  // 2 NMOS of default width
  EXPECT_NEAR(nl.total_nmos_width(), 2.0 * nl.tech().wn_default, 1e-15);
}

// --- Expansion to transistors ---

TEST(Expand, InverterDeviceCount) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  nl.add_inv("inv", a);
  const auto ex = to_spice(nl, {}, {false}, {true});
  // 2 logic transistors + 1 sleep FET.
  EXPECT_EQ(ex.circuit.mosfet_count(), 3u);
  EXPECT_EQ(ex.vgnd_node, "vgnd");
  EXPECT_EQ(ex.sleep_device, "Msleep");
}

TEST(Expand, IdealGroundHasNoSleepDevice) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  nl.add_inv("inv", a);
  ExpandOptions opt;
  opt.ground = ExpandOptions::Ground::kIdeal;
  const auto ex = to_spice(nl, opt, {false}, {true});
  EXPECT_EQ(ex.circuit.mosfet_count(), 2u);
  EXPECT_TRUE(ex.sleep_device.empty());
}

TEST(Expand, SleepResistorVariant) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  nl.add_inv("inv", a);
  ExpandOptions opt;
  opt.ground = ExpandOptions::Ground::kSleepResistor;
  const auto ex = to_spice(nl, opt, {false}, {true});
  EXPECT_EQ(ex.circuit.mosfet_count(), 2u);
  ASSERT_EQ(ex.circuit.resistors().size(), 1u);
  EXPECT_EQ(ex.circuit.resistors()[0].name, "Rsleep");
}

TEST(Expand, MirrorFaTransistorCount) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId ci = nl.add_input("ci");
  nl.add_mirror_fa("fa", a, b, ci);
  ExpandOptions opt;
  opt.ground = ExpandOptions::Ground::kIdeal;
  const auto ex = to_spice(nl, opt, {false, false, false}, {true, true, true});
  EXPECT_EQ(ex.circuit.mosfet_count(), 28u);
}

TEST(Expand, SpiceAgreesWithLogicEvaluation) {
  // DC-settle the expanded full adder for every input vector and compare
  // node voltages against boolean evaluation.
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId ci = nl.add_input("ci");
  const auto fa = nl.add_mirror_fa("fa", a, b, ci);
  ExpandOptions opt;
  opt.ground = ExpandOptions::Ground::kSleepFet;
  opt.sleep_wl = 20.0;
  for (int v = 0; v < 8; ++v) {
    const std::vector<bool> in = {(v & 1) != 0, (v & 2) != 0, (v & 4) != 0};
    auto ex = to_spice(nl, opt, in, in);
    spice::Engine eng(ex.circuit);
    const auto volts = eng.dc_operating_point(1.0);
    const auto logic = nl.evaluate(in);
    const double vdd = nl.tech().vdd;
    for (const NetId n : {fa.sum, fa.cout}) {
      const auto node = ex.circuit.find_node(nl.net_name(n));
      ASSERT_TRUE(node.has_value());
      const double vn = volts[static_cast<std::size_t>(*node)];
      if (logic[static_cast<std::size_t>(n)]) {
        EXPECT_GT(vn, 0.9 * vdd) << "net " << nl.net_name(n) << " v=" << v;
      } else {
        EXPECT_LT(vn, 0.1 * vdd) << "net " << nl.net_name(n) << " v=" << v;
      }
    }
  }
}

TEST(Expand, SetInputVectorsSwapsWaveforms) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  nl.add_inv("inv", a);
  ExpandOptions opt;
  auto ex = to_spice(nl, opt, {false}, {false});
  set_input_vectors(nl, opt, ex.circuit, {false}, {true});
  // The input source should now ramp to vdd.
  bool found = false;
  for (const auto& src : ex.circuit.vsources()) {
    if (src.name == "VIN:a") {
      EXPECT_NEAR(src.voltage.last_value(), nl.tech().vdd, 1e-12);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Expand, InverterTransientDelayReasonable) {
  Netlist nl(tech07());
  const NetId a = nl.add_input("a");
  const NetId out = nl.add_inv("inv", a);
  nl.add_load(out, 50.0 * fF);
  ExpandOptions opt;
  opt.sleep_wl = 20.0;
  auto ex = to_spice(nl, opt, {false}, {true});
  spice::Engine eng(ex.circuit);
  spice::TransientOptions topt;
  topt.tstop = 3.0 * ns;
  topt.dt = 1.0 * ps;
  topt.voltage_probes = {"a", nl.net_name(out)};
  const auto res = eng.run_transient(topt);
  const auto d = propagation_delay(res.voltages.get("a"), res.voltages.get(nl.net_name(out)),
                                   nl.tech().vdd, Edge::kRising, Edge::kFalling);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(*d, 10.0 * ps);
  EXPECT_LT(*d, 2.0 * ns);
}

}  // namespace
}  // namespace mtcmos::netlist
