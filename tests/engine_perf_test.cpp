// Hot-path contract tests for the allocation-free Newton kernel, the
// device-evaluation bypass, modified-Newton Jacobian reuse, and the
// SpiceBackend engine pool:
//   * default options stay bit-reproducible -- across engine instances,
//     across repeated runs of one engine, and after an accelerated run
//     has populated the bypass/factorization caches;
//   * bypass + reuse stay inside a bounded voltage band (<= 0.5 mV on the
//     fig05 inverter tree);
//   * the pooled SpiceBackend returns bit-identical delays regardless of
//     thread count;
//   * EngineStats counters actually count (bypass hits accumulate on a
//     settling tail, Jacobian reuse factorizes less than it solves).

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "circuits/generators.hpp"
#include "models/technology.hpp"
#include "netlist/expand.hpp"
#include "sizing/backend.hpp"
#include "sizing/spice_ref.hpp"
#include "spice/engine.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace mtcmos {
namespace {

using sizing::SpiceBackend;
using sizing::SpiceBackendOptions;
using sizing::VectorPair;
using units::ns;
using units::ps;

/// Expanded fig05-style inverter tree (sleep FET ground) with the input
/// switching 0 -> 1, ready for engine-level runs.
netlist::Expanded expanded_tree(double sleep_wl) {
  const auto tree = circuits::make_inverter_tree(tech07());
  netlist::ExpandOptions opt;
  opt.sleep_wl = sleep_wl;
  return netlist::to_spice(tree.netlist, opt, {false}, {true});
}

spice::TransientOptions tree_options(double tstop) {
  spice::TransientOptions topt;
  topt.tstop = tstop;
  topt.dt = 2.0 * ps;
  topt.record_all_nodes = true;
  return topt;
}

bool traces_bit_identical(const Trace& a, const Trace& b) {
  if (a.names() != b.names()) return false;
  for (const std::string& name : a.names()) {
    const Pwl& wa = a.get(name);
    const Pwl& wb = b.get(name);
    if (wa.times() != wb.times() || wa.values() != wb.values()) return false;
  }
  return true;
}

TEST(EnginePerf, DefaultOptionsAreBitReproducible) {
  const auto ex = expanded_tree(8.0);
  const spice::TransientOptions topt = tree_options(6.0 * ns);

  // Two independent engines and two runs of one engine must agree on
  // every recorded sample exactly: the reused workspace carries no state
  // between runs.
  spice::Engine a(ex.circuit);
  spice::Engine b(ex.circuit);
  const auto run_a1 = a.run_transient(topt);
  const auto run_a2 = a.run_transient(topt);
  const auto run_b = b.run_transient(topt);
  EXPECT_TRUE(traces_bit_identical(run_a1.voltages, run_a2.voltages));
  EXPECT_TRUE(traces_bit_identical(run_a1.voltages, run_b.voltages));
}

TEST(EnginePerf, AcceleratedRunLeaksNoStateIntoDefaultRuns) {
  const auto ex = expanded_tree(8.0);
  const spice::TransientOptions topt = tree_options(6.0 * ns);
  spice::TransientOptions accel = topt;
  accel.bypass_tol = 5e-5;
  accel.jacobian_reuse = true;

  spice::Engine eng(ex.circuit);
  const auto before = eng.run_transient(topt);
  (void)eng.run_transient(accel);  // populates bypass + factorization caches
  const auto after = eng.run_transient(topt);
  EXPECT_TRUE(traces_bit_identical(before.voltages, after.voltages));
}

TEST(EnginePerf, BypassAndReuseStayInsideHalfMillivoltOnFig05Tree) {
  const auto ex = expanded_tree(8.0);
  const spice::TransientOptions exact_opt = tree_options(12.0 * ns);
  spice::TransientOptions accel_opt = exact_opt;
  accel_opt.bypass_tol = 5e-5;
  accel_opt.jacobian_reuse = true;

  spice::Engine eng(ex.circuit);
  const auto exact = eng.run_transient(exact_opt);
  const auto accel = eng.run_transient(accel_opt);

  // Compare on a common time grid (step halving may differ between the
  // two runs, so raw sample points need not line up).
  double worst = 0.0;
  for (const std::string& name : exact.voltages.names()) {
    ASSERT_TRUE(accel.voltages.has(name)) << name;
    const Pwl& we = exact.voltages.get(name);
    const Pwl& wa = accel.voltages.get(name);
    for (int k = 0; k <= 600; ++k) {
      const double t = exact_opt.tstop * k / 600.0;
      worst = std::max(worst, std::abs(we.sample(t) - wa.sample(t)));
    }
  }
  EXPECT_LE(worst, 0.5e-3) << "bypass/reuse drifted " << worst * 1e3 << " mV from the exact run";
}

TEST(EnginePerf, PooledSpiceBackendBitIdenticalForAnyThreadCount) {
  circuits::InverterTreeOptions topt;
  topt.fanout = 1;
  topt.stages = 2;
  const auto chain = circuits::make_inverter_tree(tech07(), topt);
  const std::string leaf = chain.netlist.net_name(chain.leaves[0]);
  SpiceBackendOptions sopt;
  sopt.tstop = 8.0 * ns;
  const SpiceBackend backend(chain.netlist, {leaf}, sopt);
  const VectorPair pairs[2] = {{{false}, {true}}, {{true}, {false}}};
  const double wl = 8.0;

  const auto sweep = [&](int threads) {
    util::ThreadPool pool(threads);
    return pool.parallel_map(8, [&](std::size_t i) {
      return backend.delay_at_wl(pairs[i % 2], wl);
    });
  };
  const std::vector<double> serial = sweep(1);
  for (const int threads : {2, 4, 8}) {
    const std::vector<double> parallel = sweep(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i]) << "threads=" << threads << " i=" << i;
    }
  }
  EXPECT_GT(serial[0], 0.0);
}

TEST(EnginePerf, StatsCountBypassHitsOnSettlingTail) {
  const auto ex = expanded_tree(8.0);
  // Long window: the edge lands early, so most of the run is a settling
  // tail where every device sits still -- prime bypass territory.
  spice::TransientOptions topt = tree_options(12.0 * ns);
  topt.bypass_tol = 5e-5;
  topt.jacobian_reuse = true;

  spice::Engine eng(ex.circuit);
  eng.reset_stats();
  EXPECT_GT(eng.stats().workspace_bytes, 0u);
  (void)eng.run_transient(topt);
  const spice::EngineStats& s = eng.stats();
  EXPECT_GT(s.bypass_hits, 0u);
  EXPECT_GT(s.device_evals, 0u);
  EXPECT_GT(s.bypass_hits, s.device_evals);  // the tail dominates this run
  EXPECT_GT(s.solves, 0u);
  EXPECT_LT(s.factorizations, s.solves);  // Jacobian reuse skipped most LUs
  EXPECT_EQ(s.newton_iters, s.solves);

  // The default path must not touch the bypass counters.
  eng.reset_stats();
  (void)eng.run_transient(tree_options(2.0 * ns));
  EXPECT_EQ(eng.stats().bypass_hits, 0u);
  EXPECT_EQ(eng.stats().full_newton_fallbacks, 0u);
}

TEST(EnginePerf, BackendAggregatesEngineStats) {
  circuits::InverterTreeOptions topt;
  topt.fanout = 1;
  topt.stages = 2;
  const auto chain = circuits::make_inverter_tree(tech07(), topt);
  const std::string leaf = chain.netlist.net_name(chain.leaves[0]);
  SpiceBackendOptions sopt;
  sopt.tstop = 8.0 * ns;
  const SpiceBackend backend(chain.netlist, {leaf}, sopt);
  EXPECT_GT(backend.delay_at_wl({{false}, {true}}, 8.0), 0.0);
  const spice::EngineStats s = backend.engine_stats();
  EXPECT_GT(s.device_evals, 0u);
  EXPECT_GT(s.bypass_hits, 0u);  // backend defaults enable the bypass
  EXPECT_GT(s.workspace_bytes, 0u);
}

}  // namespace
}  // namespace mtcmos
