// Tests for the circuit generators: structure counts and, crucially,
// exhaustive functional verification of the adder and multiplier at the
// logic level (the paper's circuits must compute the right answers before
// their delays mean anything).

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "core/vbs.hpp"
#include "models/technology.hpp"
#include "netlist/bits.hpp"
#include "netlist/expand.hpp"
#include "spice/engine.hpp"
#include "util/units.hpp"

namespace mtcmos::circuits {
namespace {

using netlist::bits_from_uint;
using netlist::concat_bits;
using netlist::uint_from_bits;
using mtcmos::units::fF;

TEST(InverterTree, PaperStructureIs139) {
  const auto tree = make_inverter_tree(tech07());
  ASSERT_EQ(tree.stage_outputs.size(), 3u);
  EXPECT_EQ(tree.stage_outputs[0].size(), 1u);
  EXPECT_EQ(tree.stage_outputs[1].size(), 3u);
  EXPECT_EQ(tree.stage_outputs[2].size(), 9u);
  EXPECT_EQ(tree.netlist.gate_count(), 13);
  EXPECT_EQ(tree.netlist.transistor_count(), 26);
}

TEST(InverterTree, LogicAlternatesPerStage) {
  const auto tree = make_inverter_tree(tech07());
  const auto v1 = tree.netlist.evaluate({true});
  // Stage 1 inverts once, stage 2 twice, stage 3 three times.
  EXPECT_FALSE(v1[static_cast<std::size_t>(tree.stage_outputs[0][0])]);
  EXPECT_TRUE(v1[static_cast<std::size_t>(tree.stage_outputs[1][0])]);
  EXPECT_FALSE(v1[static_cast<std::size_t>(tree.leaves[0])]);
}

TEST(InverterTree, LeafLoadsApplied) {
  InverterTreeOptions opt;
  opt.leaf_load = 50.0 * fF;
  const auto tree = make_inverter_tree(tech07(), opt);
  for (const auto leaf : tree.leaves) {
    EXPECT_NEAR(tree.netlist.extra_load(leaf), 50.0 * fF, 1e-20);
  }
}

TEST(InverterTree, CustomFanoutAndStages) {
  InverterTreeOptions opt;
  opt.fanout = 2;
  opt.stages = 4;
  const auto tree = make_inverter_tree(tech07(), opt);
  EXPECT_EQ(tree.stage_outputs[3].size(), 8u);  // 1, 2, 4, 8
  EXPECT_EQ(tree.netlist.gate_count(), 1 + 2 + 4 + 8);
}

TEST(RippleAdder, PaperTransistorCount) {
  const auto adder = make_ripple_adder(tech07(), 3);
  EXPECT_EQ(adder.netlist.transistor_count(), 3 * 28);  // paper: "3x28 transistors"
}

TEST(RippleAdder, ExhaustiveFunctionalCheck3Bit) {
  const auto adder = make_ripple_adder(tech07(), 3);
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      const auto in = concat_bits(bits_from_uint(a, 3), bits_from_uint(b, 3));
      const auto vals = adder.netlist.evaluate(in);
      std::uint64_t result = 0;
      for (int i = 0; i < 3; ++i) {
        if (vals[static_cast<std::size_t>(adder.sum[static_cast<std::size_t>(i)])]) {
          result |= (1ull << i);
        }
      }
      if (vals[static_cast<std::size_t>(adder.cout)]) result |= (1ull << 3);
      EXPECT_EQ(result, a + b) << "a=" << a << " b=" << b;
    }
  }
}

TEST(RippleAdder, WiderAdderSpotChecks) {
  const auto adder = make_ripple_adder(tech07(), 8);
  for (const auto& [a, b] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {0, 0}, {255, 1}, {128, 127}, {170, 85}, {255, 255}}) {
    const auto in = concat_bits(bits_from_uint(a, 8), bits_from_uint(b, 8));
    const auto vals = adder.netlist.evaluate(in);
    std::uint64_t result = 0;
    for (int i = 0; i < 8; ++i) {
      if (vals[static_cast<std::size_t>(adder.sum[static_cast<std::size_t>(i)])]) {
        result |= (1ull << i);
      }
    }
    if (vals[static_cast<std::size_t>(adder.cout)]) result |= (1ull << 8);
    EXPECT_EQ(result, a + b) << "a=" << a << " b=" << b;
  }
}

std::uint64_t eval_multiplier(const CsaMultiplier& mult, std::uint64_t x, std::uint64_t y,
                              int nbits) {
  const auto in = concat_bits(bits_from_uint(x, nbits), bits_from_uint(y, nbits));
  const auto vals = mult.netlist.evaluate(in);
  std::uint64_t p = 0;
  for (std::size_t i = 0; i < mult.p.size(); ++i) {
    if (vals[static_cast<std::size_t>(mult.p[i])]) p |= (1ull << i);
  }
  return p;
}

TEST(CsaMultiplier, Exhaustive2Bit) {
  const auto mult = make_csa_multiplier(tech07(), 2);
  for (std::uint64_t x = 0; x < 4; ++x) {
    for (std::uint64_t y = 0; y < 4; ++y) {
      EXPECT_EQ(eval_multiplier(mult, x, y, 2), x * y) << "x=" << x << " y=" << y;
    }
  }
}

TEST(CsaMultiplier, Exhaustive4Bit) {
  const auto mult = make_csa_multiplier(tech03(), 4);
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      EXPECT_EQ(eval_multiplier(mult, x, y, 4), x * y) << "x=" << x << " y=" << y;
    }
  }
}

TEST(CsaMultiplier, PaperVectors8Bit) {
  const auto mult = make_csa_multiplier(tech03(), 8);
  // The paper's Table 1 / Fig. 7 vectors.
  EXPECT_EQ(eval_multiplier(mult, 0xFF, 0x81, 8), 0xFFull * 0x81ull);
  EXPECT_EQ(eval_multiplier(mult, 0x7F, 0x81, 8), 0x7Full * 0x81ull);
  EXPECT_EQ(eval_multiplier(mult, 0x00, 0x00, 8), 0ull);
  EXPECT_EQ(eval_multiplier(mult, 0xFF, 0xFF, 8), 0xFFull * 0xFFull);
}

TEST(CsaMultiplier, StructureCounts8Bit) {
  const auto mult = make_csa_multiplier(tech03(), 8);
  // 64 AND2 (2 gates each) + 64 mirror FAs (4 gates each).
  EXPECT_EQ(mult.netlist.gate_count(), 64 * 2 + 64 * 4);
  // 64 AND2 * 6T + 64 FA * 28T.
  EXPECT_EQ(mult.netlist.transistor_count(), 64 * 6 + 64 * 28);
  EXPECT_EQ(mult.p.size(), 16u);
}

TEST(InverterChain, PropagatesAndCounts) {
  const auto chain = make_inverter_chain(tech07(), 5);
  EXPECT_EQ(chain.netlist.gate_count(), 5);
  const auto vals = chain.netlist.evaluate({true});
  EXPECT_FALSE(vals[static_cast<std::size_t>(chain.outputs[0])]);
  EXPECT_TRUE(vals[static_cast<std::size_t>(chain.outputs[1])]);
  EXPECT_FALSE(vals[static_cast<std::size_t>(chain.outputs[4])]);
}

std::uint64_t eval_wallace(const WallaceMultiplier& mult, std::uint64_t x, std::uint64_t y,
                           int nbits) {
  const auto in = concat_bits(bits_from_uint(x, nbits), bits_from_uint(y, nbits));
  const auto vals = mult.netlist.evaluate(in);
  std::uint64_t p = 0;
  for (std::size_t i = 0; i < mult.p.size(); ++i) {
    if (vals[static_cast<std::size_t>(mult.p[i])]) p |= (1ull << i);
  }
  return p;
}

TEST(WallaceMultiplier, Exhaustive4Bit) {
  const auto mult = make_wallace_multiplier(tech03(), 4);
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      EXPECT_EQ(eval_wallace(mult, x, y, 4), x * y) << "x=" << x << " y=" << y;
    }
  }
}

TEST(WallaceMultiplier, SpotChecks8Bit) {
  const auto mult = make_wallace_multiplier(tech03(), 8);
  for (const auto& [x, y] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {0xFF, 0x81}, {0x7F, 0x81}, {0xAA, 0x55}, {0xFF, 0xFF}, {0, 0x42}}) {
    EXPECT_EQ(eval_wallace(mult, x, y, 8), x * y) << std::hex << x << "*" << y;
  }
}

TEST(WallaceMultiplier, LogDepthReduction) {
  // Dot-column height n reduces by ~2/3 per layer: 8 -> 6 -> 4 -> 3 -> 2
  // is 4 layers; the CSA array's equivalent chain is n-1 = 7 rows deep.
  EXPECT_EQ(make_wallace_multiplier(tech03(), 8).reduction_layers, 4);
  EXPECT_EQ(make_wallace_multiplier(tech03(), 4).reduction_layers, 2);
}

TEST(WallaceMultiplier, ShallowerCriticalPathThanCsa) {
  // Same function, fewer logic levels: the Wallace tree's CMOS delay must
  // beat the CSA array's for a carry-heavy vector.
  const auto csa = make_csa_multiplier(tech03(), 6);
  const auto wal = make_wallace_multiplier(tech03(), 6);
  auto worst_delay = [](const auto& mult) {
    std::vector<std::string> outs;
    for (const auto p : mult.p) outs.push_back(mult.netlist.net_name(p));
    const core::VbsSimulator sim(mult.netlist, {});
    const auto v0 = concat_bits(bits_from_uint(0, 6), bits_from_uint(0, 6));
    const auto v1 = concat_bits(bits_from_uint(63, 6), bits_from_uint(33, 6));
    return sim.critical_delay(v0, v1, outs);
  };
  EXPECT_LT(worst_delay(wal), worst_delay(csa));
}

TEST(ParityTree, ComputesParityExhaustively) {
  const auto tree = make_parity_tree(tech07(), 5);
  for (std::uint64_t v = 0; v < 32; ++v) {
    const auto vals = tree.netlist.evaluate(bits_from_uint(v, 5));
    EXPECT_EQ(vals[static_cast<std::size_t>(tree.output)], __builtin_parityll(v) != 0)
        << "v=" << v;
  }
}

TEST(ParityTree, DepthIsLogarithmic) {
  EXPECT_EQ(make_parity_tree(tech07(), 2).depth, 1);
  EXPECT_EQ(make_parity_tree(tech07(), 4).depth, 2);
  EXPECT_EQ(make_parity_tree(tech07(), 8).depth, 3);
  EXPECT_EQ(make_parity_tree(tech07(), 5).depth, 3);  // padded to 8
}

TEST(ParityTree, XorGateCount) {
  // 8 inputs -> 4 + 2 + 1 = 7 XOR2, each 4 NAND gates.
  const auto tree = make_parity_tree(tech07(), 8);
  EXPECT_EQ(tree.netlist.gate_count(), 7 * 4);
  EXPECT_EQ(tree.netlist.transistor_count(), 7 * 16);
}

TEST(Generators, InvalidArgumentsRejected) {
  EXPECT_THROW(make_ripple_adder(tech07(), 0), std::invalid_argument);
  EXPECT_THROW(make_csa_multiplier(tech07(), 1), std::invalid_argument);
  EXPECT_THROW(make_inverter_chain(tech07(), 0), std::invalid_argument);
  InverterTreeOptions opt;
  opt.stages = 0;
  EXPECT_THROW(make_inverter_tree(tech07(), opt), std::invalid_argument);
}

TEST(Expansion, TreeExpandsWithSleepDevice) {
  const auto tree = make_inverter_tree(tech07());
  const auto ex = netlist::to_spice(tree.netlist, {}, {false}, {true});
  // 13 inverters * 2 + sleep = 27 transistors.
  EXPECT_EQ(ex.circuit.mosfet_count(), 27u);
}

TEST(Expansion, AdderDcMatchesLogicThroughSleepFet) {
  // End-to-end: expand the 2-bit adder in MTCMOS form, DC-solve a few
  // vectors, compare outputs with boolean evaluation.
  const auto adder = make_ripple_adder(tech07(), 2);
  netlist::ExpandOptions opt;
  opt.sleep_wl = 15.0;
  for (const auto& [a, b] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {0, 0}, {1, 2}, {3, 3}, {2, 1}}) {
    const auto in = concat_bits(bits_from_uint(a, 2), bits_from_uint(b, 2));
    auto ex = netlist::to_spice(adder.netlist, opt, in, in);
    spice::Engine eng(ex.circuit);
    const auto volts = eng.dc_operating_point(1.0);
    const auto logic = adder.netlist.evaluate(in);
    std::uint64_t result = 0;
    for (int i = 0; i < 2; ++i) {
      const auto node =
          ex.circuit.find_node(adder.netlist.net_name(adder.sum[static_cast<std::size_t>(i)]));
      ASSERT_TRUE(node.has_value());
      if (volts[static_cast<std::size_t>(*node)] > 0.6) result |= (1ull << i);
    }
    const auto cnode = ex.circuit.find_node(adder.netlist.net_name(adder.cout));
    if (volts[static_cast<std::size_t>(*cnode)] > 0.6) result |= (1ull << 2);
    EXPECT_EQ(result, a + b) << "a=" << a << " b=" << b;
    (void)logic;
  }
}

}  // namespace
}  // namespace mtcmos::circuits
