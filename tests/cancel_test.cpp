// Graceful-shutdown tests (util/cancel.hpp + the session cancellation
// paths): the process-global token raised by real SIGINT/SIGTERM
// delivery, cross-thread cancellation of in-flight sweeps, and draining
// a multi-threaded SpiceBackend sweep mid-run without torn state.
// Labeled `tsan`: the MTCMOS_SANITIZE=thread build runs these to prove
// the signal handler, the token, and the drain are data-race-free.

#include "util/cancel.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include "circuits/generators.hpp"
#include "sizing/session.hpp"
#include "sizing/sizing.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace mtcmos {
namespace {

using circuits::make_ripple_adder;
using sizing::EvalSession;
using sizing::SpiceBackend;
using sizing::SpiceBackendOptions;
using sizing::VbsBackend;
using units::ns;

// Every test re-arms the global token on exit so a raised flag cannot
// leak into later tests (default sessions poll it).
class Cancel : public ::testing::Test {
 protected:
  void TearDown() override { util::CancelToken::global().reset(); }
};

std::vector<std::string> adder_outputs(const circuits::RippleAdder& adder) {
  std::vector<std::string> outs;
  for (const auto s : adder.sum) outs.push_back(adder.netlist.net_name(s));
  outs.push_back(adder.netlist.net_name(adder.cout));
  return outs;
}

TEST_F(Cancel, TokenRequestIsStickyUntilReset) {
  util::CancelToken token;
  EXPECT_FALSE(token.requested());
  token.request();
  EXPECT_TRUE(token.requested());
  token.request();  // idempotent
  EXPECT_TRUE(token.requested());
  token.reset();
  EXPECT_FALSE(token.requested());
  EXPECT_EQ(&util::CancelToken::global(), &util::CancelToken::global());
}

TEST_F(Cancel, SignalHandlerRaisesTheGlobalToken) {
  util::install_cancel_signal_handlers();
  util::CancelToken::global().reset();
  ASSERT_FALSE(util::CancelToken::global().requested());
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(util::CancelToken::global().requested());
  EXPECT_EQ(util::last_cancel_signal(), SIGTERM);
}

TEST_F(Cancel, CrossThreadCancelDrainsAVbsSweep) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);

  util::CancelToken token;
  util::ThreadPool pool(4);
  SweepReport report;
  EvalSession session;
  session.pool = &pool;
  session.report = &report;
  session.cancel_token = &token;
  std::thread canceller([&session] {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    session.cancel();  // the documented cross-thread entry point
  });
  const auto ranked = sizing::rank_vectors(vbs, vectors, 10.0, session);
  canceller.join();
  EXPECT_TRUE(token.requested());
  // The sweep drained: every item is accounted for exactly once, split
  // between completed work and classified cancellations.
  EXPECT_EQ(report.succeeded + report.recovered + report.failed, vectors.size());
  EXPECT_LE(ranked.size(), vectors.size());
  for (const auto& [index, failure] : report.failures) {
    EXPECT_EQ(failure.code, FailureCode::kCancelled) << index;
  }
}

TEST_F(Cancel, SigintDuringMultiThreadedSpiceSweepDrainsCleanly) {
  // The acceptance scenario: a real SIGINT delivered while a 4-thread
  // transistor-level sweep is in flight.  The handler raises the global
  // token (which the default session polls), in-flight items drain, and
  // the partial report classifies what was skipped -- no exception, no
  // torn report, no race.
  util::install_cancel_signal_handlers();
  util::CancelToken::global().reset();

  const auto adder = make_ripple_adder(tech07(), 1);
  SpiceBackendOptions sopt;
  sopt.tstop = 12.0 * ns;
  const SpiceBackend spice(adder.netlist, adder_outputs(adder), sopt);
  const auto vectors = sizing::all_vector_pairs(2);

  util::ThreadPool pool(4);
  SweepReport report;
  EvalSession session;  // default token: the global one SIGINT raises
  session.pool = &pool;
  session.report = &report;
  std::thread signaller([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    std::raise(SIGINT);
  });
  const auto ranked = sizing::rank_vectors(spice, vectors, 10.0, session);
  signaller.join();
  EXPECT_TRUE(util::CancelToken::global().requested());
  EXPECT_EQ(util::last_cancel_signal(), SIGINT);
  EXPECT_EQ(report.succeeded + report.recovered + report.failed, vectors.size());
  for (const auto& [index, failure] : report.failures) {
    // Items cancelled by the session or inside the recovery ladder; no
    // other failure mode exists in this sweep.
    EXPECT_EQ(failure.code, FailureCode::kCancelled) << index;
  }
  // Ranked entries are only ever fully measured items.
  for (const auto& vd : ranked) {
    EXPECT_GT(vd.delay_cmos, 0.0);
    EXPECT_GT(vd.delay_mtcmos, 0.0);
  }
}

}  // namespace
}  // namespace mtcmos
