// Graceful-shutdown tests (util/cancel.hpp + the session cancellation
// paths): the process-global token raised by real SIGINT/SIGTERM
// delivery, cross-thread cancellation of in-flight sweeps, and draining
// a multi-threaded SpiceBackend sweep mid-run without torn state.
// Labeled `tsan`: the MTCMOS_SANITIZE=thread build runs these to prove
// the signal handler, the token, and the drain are data-race-free.

#include "util/cancel.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "circuits/generators.hpp"
#include "sizing/checkpoint.hpp"
#include "sizing/session.hpp"
#include "sizing/sizing.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/journal.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace mtcmos {
namespace {

using circuits::make_ripple_adder;
using sizing::EvalSession;
using sizing::SpiceBackend;
using sizing::SpiceBackendOptions;
using sizing::VbsBackend;
using units::ns;

// Every test re-arms the global token on exit so a raised flag cannot
// leak into later tests (default sessions poll it).
class Cancel : public ::testing::Test {
 protected:
  void TearDown() override {
    util::CancelToken::global().reset();
    faultinject::disarm_all();
  }
};

std::vector<std::string> adder_outputs(const circuits::RippleAdder& adder) {
  std::vector<std::string> outs;
  for (const auto s : adder.sum) outs.push_back(adder.netlist.net_name(s));
  outs.push_back(adder.netlist.net_name(adder.cout));
  return outs;
}

TEST_F(Cancel, TokenRequestIsStickyUntilReset) {
  util::CancelToken token;
  EXPECT_FALSE(token.requested());
  token.request();
  EXPECT_TRUE(token.requested());
  token.request();  // idempotent
  EXPECT_TRUE(token.requested());
  token.reset();
  EXPECT_FALSE(token.requested());
  EXPECT_EQ(&util::CancelToken::global(), &util::CancelToken::global());
}

TEST_F(Cancel, SignalHandlerRaisesTheGlobalToken) {
  util::install_cancel_signal_handlers();
  util::CancelToken::global().reset();
  ASSERT_FALSE(util::CancelToken::global().requested());
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(util::CancelToken::global().requested());
  EXPECT_EQ(util::last_cancel_signal(), SIGTERM);
}

TEST_F(Cancel, CrossThreadCancelDrainsAVbsSweep) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);

  util::CancelToken token;
  util::ThreadPool pool(4);
  SweepReport report;
  EvalSession session;
  session.pool = &pool;
  session.report = &report;
  session.cancel_token = &token;
  std::thread canceller([&session] {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    session.cancel();  // the documented cross-thread entry point
  });
  const auto ranked = sizing::rank_vectors(vbs, vectors, 10.0, session);
  canceller.join();
  EXPECT_TRUE(token.requested());
  // The sweep drained: every item is accounted for exactly once, split
  // between completed work and classified cancellations.
  EXPECT_EQ(report.succeeded + report.recovered + report.failed, vectors.size());
  EXPECT_LE(ranked.size(), vectors.size());
  for (const auto& [index, failure] : report.failures) {
    EXPECT_EQ(failure.code, FailureCode::kCancelled) << index;
  }
}

TEST_F(Cancel, SigintDuringMultiThreadedSpiceSweepDrainsCleanly) {
  // The acceptance scenario: a real SIGINT delivered while a 4-thread
  // transistor-level sweep is in flight.  The handler raises the global
  // token (which the default session polls), in-flight items drain, and
  // the partial report classifies what was skipped -- no exception, no
  // torn report, no race.
  util::install_cancel_signal_handlers();
  util::CancelToken::global().reset();

  const auto adder = make_ripple_adder(tech07(), 1);
  SpiceBackendOptions sopt;
  sopt.tstop = 12.0 * ns;
  const SpiceBackend spice(adder.netlist, adder_outputs(adder), sopt);
  const auto vectors = sizing::all_vector_pairs(2);

  util::ThreadPool pool(4);
  SweepReport report;
  EvalSession session;  // default token: the global one SIGINT raises
  session.pool = &pool;
  session.report = &report;
  std::thread signaller([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    std::raise(SIGINT);
  });
  const auto ranked = sizing::rank_vectors(spice, vectors, 10.0, session);
  signaller.join();
  EXPECT_TRUE(util::CancelToken::global().requested());
  EXPECT_EQ(util::last_cancel_signal(), SIGINT);
  EXPECT_EQ(report.succeeded + report.recovered + report.failed, vectors.size());
  for (const auto& [index, failure] : report.failures) {
    // Items cancelled by the session or inside the recovery ladder; no
    // other failure mode exists in this sweep.
    EXPECT_EQ(failure.code, FailureCode::kCancelled) << index;
  }
  // Ranked entries are only ever fully measured items.
  for (const auto& vd : ranked) {
    EXPECT_GT(vd.delay_cmos, 0.0);
    EXPECT_GT(vd.delay_mtcmos, 0.0);
  }
}

TEST_F(Cancel, SigtermDuringCompactLeavesAValidJournal) {
  // Compaction replaces the journal by atomic rename, and the cancel
  // handlers install WITHOUT SA_RESTART, so a SIGTERM landing mid-compact
  // can EINTR one of its syscalls.  Whatever happens -- compact finishes,
  // or aborts with an exception -- the journal on disk must replay with
  // every latest value intact.  Loop several compaction rounds with a
  // concurrent SIGTERM to give the signal a window.
  util::install_cancel_signal_handlers();
  util::CancelToken::global().reset();
  const auto dir = std::filesystem::temp_directory_path() /
                   ("cancel_compact." +
                    std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  std::filesystem::create_directories(dir);
  const std::string jpath = (dir / "compact.mtj").string();
  {
    util::Journal j;
    j.open(jpath);
    for (int i = 0; i < 200; ++i) {
      j.append("key" + std::to_string(i % 50), "v" + std::to_string(i));
    }
    std::thread signaller([] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      std::raise(SIGTERM);
    });
    for (int round = 0; round < 20; ++round) {
      try {
        j.compact();
      } catch (const std::exception&) {
        // An EINTR-aborted compact is acceptable; corruption is not.
      }
    }
    signaller.join();
    j.close();
  }
  EXPECT_TRUE(util::CancelToken::global().requested());
  util::Journal replay;
  replay.open(jpath);
  EXPECT_EQ(replay.size(), 50u);
  for (int k = 0; k < 50; ++k) {
    const std::string* value = replay.find("key" + std::to_string(k));
    ASSERT_NE(value, nullptr) << "key" << k;
    EXPECT_EQ(*value, "v" + std::to_string(150 + k)) << "latest update must survive compaction";
  }
  std::filesystem::remove_all(dir);
}

TEST_F(Cancel, KillDuringBindMetaWriteIsResumable) {
  // A worker dying inside Checkpoint::bind_meta leaves either no meta
  // record (the injected-kill half) or a torn one (the sheared-tail
  // half).  Reopening must truncate the torn tail, rebind the meta
  // cleanly, and resume the sweep to the uninterrupted result.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("cancel_bind_meta." +
                    std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  std::filesystem::create_directories(dir);
  const std::string cpath = (dir / "meta.mtj").string();

  {
    sizing::Checkpoint ckpt;
    ckpt.open(cpath);
    // Death before the record reaches the journal: the append fault fires
    // ahead of the write, exactly like a SIGKILL between the decision to
    // bind and the disk write.
    faultinject::arm(faultinject::Site::kJournalAppend, faultinject::kAnyScope, 1);
    EXPECT_THROW(ckpt.bind_meta("backend", "vbs"), NumericalError);
    faultinject::disarm_all();
  }
  {
    // Death mid-write: shear the record so only a torn prefix remains.
    const std::string record = util::format_journal_record("meta:backend", "vbs");
    std::ofstream os(cpath, std::ios::binary | std::ios::app);
    os.write(record.data(), static_cast<std::streamsize>(record.size() / 2));
  }

  const auto adder = make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);
  const auto reference = sizing::rank_vectors(vbs, vectors, 10.0);

  sizing::Checkpoint resumed;
  resumed.open(cpath);
  EXPECT_NO_THROW(resumed.bind_meta("backend", "vbs"));  // torn tail truncated, clean rebind
  EXPECT_THROW(resumed.bind_meta("backend", "spice"), NumericalError);  // guard still guards

  SweepReport report;
  EvalSession session;
  session.checkpoint = &resumed;
  session.report = &report;
  const auto ranked = sizing::rank_vectors(vbs, vectors, 10.0, session);
  EXPECT_EQ(report.failed, 0u);
  ASSERT_EQ(ranked.size(), reference.size());
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i].delay_cmos, reference[i].delay_cmos) << i;
    EXPECT_EQ(ranked[i].delay_mtcmos, reference[i].delay_mtcmos) << i;
    EXPECT_EQ(ranked[i].degradation_pct, reference[i].degradation_pct) << i;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mtcmos
