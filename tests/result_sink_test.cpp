// Streaming result path: sinks observe exactly the rows the legacy
// return values are built from, spilled rows decode back bit-identical,
// checkpoint replay feeds a sink the same bytes the original run did,
// and sharded spills merge into the same store a single process writes.

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuits/generators.hpp"
#include "sizing/backend.hpp"
#include "sizing/checkpoint.hpp"
#include "sizing/result_sink.hpp"
#include "sizing/session.hpp"
#include "sizing/sizing.hpp"
#include "util/cancel.hpp"
#include "util/columnar.hpp"

namespace mtcmos {
namespace {

using sizing::Checkpoint;
using sizing::ColumnarSpillSink;
using sizing::EvalSession;
using sizing::MemorySink;
using sizing::parse_item_key_transition;
using sizing::TeeSink;
using sizing::VbsBackend;
using sizing::VectorDelay;
using sizing::VectorPair;
using util::ColumnarRow;
using util::ColumnarWriter;

class ResultSinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("result_sink_test." +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "." +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);

    adder_ = std::make_unique<circuits::RippleAdder>(circuits::make_ripple_adder(tech07(), 2));
    for (const auto s : adder_->sum) outputs_.push_back(adder_->netlist.net_name(s));
    outputs_.push_back(adder_->netlist.net_name(adder_->cout));
    backend_ = std::make_unique<VbsBackend>(adder_->netlist, outputs_);
    vectors_ = sizing::all_vector_pairs(static_cast<int>(adder_->netlist.inputs().size()));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
  std::unique_ptr<circuits::RippleAdder> adder_;
  std::vector<std::string> outputs_;
  std::unique_ptr<VbsBackend> backend_;
  std::vector<VectorPair> vectors_;
};

/// MemorySink that also demands keys, so its recording is comparable
/// with a key-carrying columnar spill row for row.
class KeyedMemorySink final : public sizing::ResultSink {
 public:
  MemorySink inner;
  bool wants_keys() const override { return true; }
  void on_delay(const std::string& key, const VectorDelay& row) override {
    inner.on_delay(key, row);
  }
  void on_value(const std::string& key, double value) override { inner.on_value(key, value); }
};

bool same_delay(const VectorDelay& a, const VectorDelay& b) {
  return a.pair.v0 == b.pair.v0 && a.pair.v1 == b.pair.v1 && a.delay_cmos == b.delay_cmos &&
         a.delay_mtcmos == b.delay_mtcmos && a.degradation_pct == b.degradation_pct;
}

TEST_F(ResultSinkTest, StreamRequiresASink) {
  EvalSession session;
  EXPECT_THROW(sizing::rank_vectors_stream(*backend_, vectors_, 10.0, session),
               std::invalid_argument);
}

TEST_F(ResultSinkTest, AttachingASinkDoesNotChangeRankVectorsReturn) {
  const auto plain = sizing::rank_vectors(*backend_, vectors_, 10.0);
  MemorySink sink;
  EvalSession session;
  session.sink = &sink;
  const auto observed = sizing::rank_vectors(*backend_, vectors_, 10.0, session);
  ASSERT_EQ(observed.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_TRUE(same_delay(observed[i], plain[i])) << "row " << i;
  }
  // The sink sees the full universe (non-switching rows included), the
  // return value only the switching subset.
  EXPECT_EQ(sink.delays.size(), vectors_.size());
  EXPECT_GT(sink.delays.size(), plain.size());
}

TEST_F(ResultSinkTest, MemoryAndColumnarSinksObserveIdenticalRows) {
  KeyedMemorySink keyed;
  MemorySink& memory = keyed.inner;
  EvalSession mem_session;
  mem_session.sink = &keyed;
  const std::size_t n_mem = sizing::rank_vectors_stream(*backend_, vectors_, 10.0, mem_session);

  ColumnarWriter store;
  store.open(path("rows.mtc"));
  ColumnarSpillSink spill(store);
  EvalSession spill_session;
  spill_session.sink = &spill;
  const std::size_t n_spill =
      sizing::rank_vectors_stream(*backend_, vectors_, 10.0, spill_session);
  store.close();

  EXPECT_EQ(n_mem, n_spill);
  ASSERT_EQ(memory.delays.size(), n_mem);

  std::size_t i = 0;
  util::scan_columnar_file(path("rows.mtc"), [&](const ColumnarRow& row) {
    ASSERT_LT(i, memory.delays.size());
    EXPECT_EQ(row.key, memory.delays[i].key);
    const VectorDelay decoded = ColumnarSpillSink::decode_delay(row);
    EXPECT_TRUE(same_delay(decoded, memory.delays[i].row)) << "row " << i;
    ++i;
  });
  EXPECT_EQ(i, n_mem);
}

TEST_F(ResultSinkTest, SizingEmitsValueRowsIdenticallyOnBothSinks) {
  KeyedMemorySink keyed;
  MemorySink& memory = keyed.inner;
  EvalSession mem_session;
  mem_session.sink = &keyed;
  const auto sized_mem = sizing::size_for_degradation(*backend_, vectors_, 5.0, {}, mem_session);

  ColumnarWriter store;
  store.open(path("probe.mtc"));
  ColumnarSpillSink spill(store);
  EvalSession spill_session;
  spill_session.sink = &spill;
  const auto sized_spill =
      sizing::size_for_degradation(*backend_, vectors_, 5.0, {}, spill_session);
  store.close();

  EXPECT_EQ(sized_mem.wl, sized_spill.wl);
  EXPECT_EQ(sized_mem.degradation_pct, sized_spill.degradation_pct);

  std::size_t d = 0, v = 0;
  util::scan_columnar_file(path("probe.mtc"), [&](const ColumnarRow& row) {
    if (row.n_cols == ColumnarSpillSink::kDelayCols) {
      ASSERT_LT(d, memory.delays.size());
      EXPECT_EQ(row.key, memory.delays[d].key);
      EXPECT_TRUE(same_delay(ColumnarSpillSink::decode_delay(row), memory.delays[d].row));
      ++d;
    } else {
      ASSERT_EQ(row.n_cols, 1u);
      ASSERT_LT(v, memory.values.size());
      EXPECT_EQ(row.key, memory.values[v].key);
      EXPECT_EQ(row.values[0], memory.values[v].value);
      ++v;
    }
  });
  EXPECT_EQ(d, memory.delays.size());
  EXPECT_EQ(v, memory.values.size());
}

TEST_F(ResultSinkTest, CheckpointReplayFeedsTheSinkTheSameBytes) {
  // Uninterrupted reference emission.
  MemorySink reference;
  {
    Checkpoint ckpt;
    ckpt.open(path("ref.mtj"));
    EvalSession session;
    session.checkpoint = &ckpt;
    session.sink = &reference;
    sizing::rank_vectors_stream(*backend_, vectors_, 10.0, session);
  }

  // "Killed" run: only the first half of the vector set completes.
  Checkpoint ckpt;
  ckpt.open(path("resume.mtj"));
  const std::vector<VectorPair> half(vectors_.begin(),
                                     vectors_.begin() + static_cast<std::ptrdiff_t>(
                                                            vectors_.size() / 2));
  {
    MemorySink partial;
    EvalSession session;
    session.checkpoint = &ckpt;
    session.sink = &partial;
    sizing::rank_vectors_stream(*backend_, half, 10.0, session);
  }

  // Resumed run over the full set: half replays, half computes -- the
  // emission stream must match the uninterrupted run byte for byte.
  MemorySink resumed;
  EvalSession session;
  session.checkpoint = &ckpt;
  session.sink = &resumed;
  sizing::rank_vectors_stream(*backend_, vectors_, 10.0, session);

  ASSERT_EQ(resumed.delays.size(), reference.delays.size());
  for (std::size_t i = 0; i < reference.delays.size(); ++i) {
    EXPECT_EQ(resumed.delays[i].key, reference.delays[i].key);
    EXPECT_TRUE(same_delay(resumed.delays[i].row, reference.delays[i].row)) << "row " << i;
  }
}

TEST_F(ResultSinkTest, TeeSinkFansOutToBothTargets) {
  MemorySink a, b;
  TeeSink tee(a, b);
  EXPECT_FALSE(tee.wants_keys());  // both memory sinks decline keys
  EvalSession session;
  session.sink = &tee;
  sizing::rank_vectors_stream(*backend_, vectors_, 10.0, session);
  ASSERT_EQ(a.delays.size(), b.delays.size());
  ASSERT_EQ(a.delays.size(), vectors_.size());
  for (std::size_t i = 0; i < a.delays.size(); ++i) {
    EXPECT_EQ(a.delays[i].key, b.delays[i].key);
    EXPECT_TRUE(same_delay(a.delays[i].row, b.delays[i].row));
  }
}

TEST_F(ResultSinkTest, KeysAreFormattedOnlyWhenSomethingWantsThem) {
  MemorySink memory;  // wants_keys() == false, no checkpoint
  EvalSession session;
  session.sink = &memory;
  sizing::rank_vectors_stream(*backend_, vectors_, 10.0, session);
  ASSERT_FALSE(memory.delays.empty());
  EXPECT_TRUE(memory.delays.front().key.empty());

  ColumnarWriter store;
  store.open(path("keyed.mtc"));
  ColumnarSpillSink spill(store);  // wants_keys() == true
  EvalSession keyed;
  keyed.sink = &spill;
  sizing::rank_vectors_stream(*backend_, vectors_, 10.0, keyed);
  store.close();
  util::scan_columnar_file(path("keyed.mtc"), [](const ColumnarRow& row) {
    EXPECT_FALSE(row.key.empty());
  });
}

TEST(ParseItemKey, RoundTripsTransitionBits) {
  VectorPair vp;
  ASSERT_TRUE(parse_item_key_transition("rank:vbs:1234:abcd:0101-1100", vp));
  EXPECT_EQ(vp.v0, (std::vector<bool>{false, true, false, true}));
  EXPECT_EQ(vp.v1, (std::vector<bool>{true, true, false, false}));
}

TEST(ParseItemKey, RejectsMalformedSuffixes) {
  VectorPair vp;
  EXPECT_FALSE(parse_item_key_transition("", vp));
  EXPECT_FALSE(parse_item_key_transition("no-colon-here", vp));
  EXPECT_FALSE(parse_item_key_transition("prefix:0101", vp));        // no '-'
  EXPECT_FALSE(parse_item_key_transition("prefix:01-111", vp));      // length mismatch
  EXPECT_FALSE(parse_item_key_transition("prefix:01a1-1100", vp));   // non-bit char
  EXPECT_FALSE(parse_item_key_transition("prefix:-", vp));           // empty runs
}

}  // namespace
}  // namespace mtcmos
