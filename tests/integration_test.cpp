// Cross-engine integration tests: the switch-level simulator against the
// transistor-level engine on the paper's circuits.  These encode the
// paper's own accuracy claims (Section 6): the simulator "captures the
// basic effect of sleep transistor sizing on propagation delay" and
// "follows the trends" -- so the tests assert trend agreement and bounded
// ratio error, not tight absolute matching.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "circuits/generators.hpp"
#include "core/vbs.hpp"
#include "models/sleep_transistor.hpp"
#include "netlist/bits.hpp"
#include "sizing/spice_ref.hpp"
#include "util/units.hpp"

namespace mtcmos {
namespace {

using circuits::make_inverter_tree;
using circuits::make_ripple_adder;
using core::VbsOptions;
using core::VbsSimulator;
using netlist::bits_from_uint;
using netlist::concat_bits;
using sizing::SpiceRef;
using sizing::SpiceRefOptions;
using sizing::VectorPair;
using units::ns;
using units::ps;

TEST(CrossEngine, TreeDelayTrendsMatch) {
  // Paper Fig. 10: delay vs sleep W/L from both engines.  Both must be
  // monotone decreasing in W/L and agree within a 2x band everywhere
  // (the paper's own Fig. 10 shows comparable deviations).
  const auto tree = make_inverter_tree(tech07());
  const std::string leaf = tree.netlist.net_name(tree.leaves[0]);
  const VectorPair vp{{false}, {true}};

  std::vector<double> wls = {5.0, 8.0, 14.0, 20.0};
  double prev_spice = 1e9, prev_vbs = 1e9;
  for (double wl : wls) {
    SpiceRefOptions sopt;
    sopt.expand.sleep_wl = wl;
    sopt.tstop = 12.0 * ns;
    SpiceRef ref(tree.netlist, {leaf}, sopt);
    const double d_spice = ref.measure(vp).delay;

    VbsOptions vopt;
    vopt.sleep_resistance = SleepTransistor(tech07(), wl).reff();
    const double d_vbs = VbsSimulator(tree.netlist, vopt).delay({false}, {true}, "in", leaf);

    ASSERT_GT(d_spice, 0.0) << "wl=" << wl;
    ASSERT_GT(d_vbs, 0.0) << "wl=" << wl;
    EXPECT_LT(d_spice, prev_spice) << "wl=" << wl;
    EXPECT_LT(d_vbs, prev_vbs) << "wl=" << wl;
    // At the smallest sizings the bounce (~0.4 V) drives the real sleep
    // device out of deep triode, so the linear-R switch-level model is
    // optimistic there -- the regime the paper's Fig. 10 also shows the
    // largest deviation in.  The ratio band reflects that.
    const double ratio = d_vbs / d_spice;
    EXPECT_GT(ratio, 0.4) << "wl=" << wl;
    EXPECT_LT(ratio, 2.2) << "wl=" << wl;
    prev_spice = d_spice;
    prev_vbs = d_vbs;
  }
}

TEST(CrossEngine, TreeGroundBouncePeaksAgree) {
  // Paper Fig. 11: the virtual-ground transient.  Peak heights from the
  // two engines should be the same order and ordered the same way in W/L.
  const auto tree = make_inverter_tree(tech07());
  const std::string leaf = tree.netlist.net_name(tree.leaves[0]);
  const VectorPair vp{{false}, {true}};
  double prev_spice = 1e9, prev_vbs = 1e9;
  for (double wl : {6.0, 12.0, 24.0}) {
    SpiceRefOptions sopt;
    sopt.expand.sleep_wl = wl;
    sopt.tstop = 12.0 * ns;
    SpiceRef ref(tree.netlist, {leaf}, sopt);
    const double vx_spice = ref.measure(vp).vx_peak;

    VbsOptions vopt;
    vopt.sleep_resistance = SleepTransistor(tech07(), wl).reff();
    const double vx_vbs = VbsSimulator(tree.netlist, vopt).run({false}, {true}).vx_peak;

    EXPECT_LT(vx_spice, prev_spice);
    EXPECT_LT(vx_vbs, prev_vbs);
    EXPECT_GT(vx_vbs / vx_spice, 0.4) << "wl=" << wl;
    EXPECT_LT(vx_vbs / vx_spice, 2.5) << "wl=" << wl;
    prev_spice = vx_spice;
    prev_vbs = vx_vbs;
  }
}

TEST(CrossEngine, AdderDelayVsWlShapesMatch) {
  // Paper Fig. 13 on the 3-bit adder, one vector pair.
  const auto adder = make_ripple_adder(tech07(), 3);
  std::vector<std::string> outs;
  for (const auto s : adder.sum) outs.push_back(adder.netlist.net_name(s));
  outs.push_back(adder.netlist.net_name(adder.cout));
  const VectorPair vp{concat_bits(bits_from_uint(1, 3), bits_from_uint(0, 3)),
                      concat_bits(bits_from_uint(6, 3), bits_from_uint(5, 3))};

  for (double wl : {6.0, 12.0, 30.0}) {
    SpiceRefOptions sopt;
    sopt.expand.sleep_wl = wl;
    sopt.tstop = 10.0 * ns;
    SpiceRef ref(adder.netlist, outs, sopt);
    const double d_spice = ref.measure(vp).delay;

    core::VbsOptions vopt;
    vopt.sleep_resistance = SleepTransistor(tech07(), wl).reff();
    const double d_vbs = VbsSimulator(adder.netlist, vopt).critical_delay(vp.v0, vp.v1, outs);

    ASSERT_GT(d_spice, 0.0) << "wl=" << wl;
    ASSERT_GT(d_vbs, 0.0) << "wl=" << wl;
    EXPECT_GT(d_vbs / d_spice, 0.4) << "wl=" << wl;
    EXPECT_LT(d_vbs / d_spice, 2.5) << "wl=" << wl;
  }
}

TEST(CrossEngine, AdderSettlesToCorrectLogic) {
  // The transistor-level transient must land every observed output on the
  // rail boolean evaluation predicts.
  const auto adder = make_ripple_adder(tech07(), 3);
  std::vector<std::string> outs;
  for (const auto s : adder.sum) outs.push_back(adder.netlist.net_name(s));
  const VectorPair vp{concat_bits(bits_from_uint(0, 3), bits_from_uint(0, 3)),
                      concat_bits(bits_from_uint(7, 3), bits_from_uint(1, 3))};
  SpiceRefOptions sopt;
  sopt.expand.sleep_wl = 10.0;
  sopt.tstop = 10.0 * ns;
  SpiceRef ref(adder.netlist, outs, sopt);
  const auto res = ref.measure(vp);
  EXPECT_LT(res.settle_error, 0.05);  // within 50 mV of the rail
}

TEST(CrossEngine, ExhaustiveAdderSpaceSettlesCorrectly) {
  // The paper's Section 6.2 space: all 4096 transitions of the 3-bit
  // adder through the switch-level simulator; every output must settle on
  // the boolean-correct rail.  (This is the functional half of the
  // exhaustive sweep; the timing half is bench sec62_runtime.)
  const auto adder = circuits::make_ripple_adder(tech07(), 3);
  core::VbsOptions opt;
  opt.sleep_resistance = SleepTransistor(tech07(), 10.0).reff();
  const core::VbsSimulator sim(adder.netlist, opt);
  const double vdd = tech07().vdd;
  int checked = 0;
  for (std::uint64_t v0 = 0; v0 < 64; ++v0) {
    for (std::uint64_t v1 = 0; v1 < 64; ++v1) {
      const auto b0 = netlist::bits_from_uint(v0, 6);
      const auto b1 = netlist::bits_from_uint(v1, 6);
      const auto res = sim.run(b0, b1);
      const auto expect = adder.netlist.evaluate(b1);
      for (const auto out : adder.sum) {
        const auto& w = res.outputs.get(adder.netlist.net_name(out));
        ASSERT_EQ(w.last_value() > 0.5 * vdd, expect[static_cast<std::size_t>(out)])
            << "v0=" << v0 << " v1=" << v1;
      }
      ++checked;
    }
  }
  EXPECT_EQ(checked, 4096);
}

TEST(CrossEngine, SupplyEnergyAgreesOnInverterRise) {
  // One inverter charging 50 fF to 1.2 V: both engines' supply-energy
  // meters should read ~ CL_total * Vdd^2-ish (SPICE adds short-circuit
  // and parasitic contributions; demand same order and SPICE >= VBS).
  const Technology tech = tech07();
  netlist::Netlist nl(tech);
  const auto in = nl.add_input("in");
  const auto out = nl.add_inv("inv", in);
  nl.add_load(out, 50.0 * units::fF);

  core::VbsOptions vopt;
  vopt.sleep_resistance = SleepTransistor(tech, 10.0).reff();
  const auto vres = core::VbsSimulator(nl, vopt).run({true}, {false});  // output rises
  const double cl = nl.output_load(0);
  EXPECT_NEAR(vres.supply_energy, cl * tech.vdd * tech.vdd, 1e-18);

  sizing::SpiceRefOptions sopt;
  sopt.expand.sleep_wl = 10.0;
  sopt.tstop = 6.0 * ns;
  sizing::SpiceRef ref(nl, {"inv.out"}, sopt);
  const auto m = ref.measure({{true}, {false}});
  EXPECT_GT(m.supply_energy, 0.7 * vres.supply_energy);
  EXPECT_LT(m.supply_energy, 3.0 * vres.supply_energy);
}

TEST(CrossEngine, VbsIsOrdersOfMagnitudeFaster) {
  // The reason the tool exists (paper Section 6.2).  Compare one vector
  // evaluation on the 3-bit adder; demand >= 50x here to stay robust on
  // slow CI machines (the bench prints the real, much larger, number).
  const auto adder = make_ripple_adder(tech07(), 3);
  std::vector<std::string> outs = {adder.netlist.net_name(adder.sum[2])};
  const VectorPair vp{concat_bits(bits_from_uint(0, 3), bits_from_uint(0, 3)),
                      concat_bits(bits_from_uint(7, 3), bits_from_uint(1, 3))};

  SpiceRefOptions sopt;
  sopt.expand.sleep_wl = 10.0;
  sopt.tstop = 8.0 * ns;
  SpiceRef ref(adder.netlist, outs, sopt);

  core::VbsOptions vopt;
  vopt.sleep_resistance = SleepTransistor(tech07(), 10.0).reff();
  const VbsSimulator vbs(adder.netlist, vopt);

  const auto t0 = std::chrono::steady_clock::now();
  ref.measure(vp);
  const auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) vbs.critical_delay(vp.v0, vp.v1, outs);
  const auto t2 = std::chrono::steady_clock::now();

  const double spice_s = std::chrono::duration<double>(t1 - t0).count();
  const double vbs_s = std::chrono::duration<double>(t2 - t1).count() / 10.0;
  EXPECT_GT(spice_s / vbs_s, 50.0) << "spice=" << spice_s << "s vbs=" << vbs_s << "s";
}

}  // namespace
}  // namespace mtcmos
