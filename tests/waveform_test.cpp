// Unit tests for mtcmos::waveform: Pwl, crossings, delay measurements.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "waveform/measure.hpp"
#include "waveform/pwl.hpp"
#include "waveform/trace.hpp"
#include "waveform/vcd.hpp"

namespace mtcmos {
namespace {

TEST(Pwl, ConstantSamplesEverywhere) {
  const Pwl w = Pwl::constant(1.2);
  EXPECT_DOUBLE_EQ(w.sample(-1.0), 1.2);
  EXPECT_DOUBLE_EQ(w.sample(0.0), 1.2);
  EXPECT_DOUBLE_EQ(w.sample(1e9), 1.2);
}

TEST(Pwl, LinearInterpolation) {
  Pwl w;
  w.append(0.0, 0.0);
  w.append(2.0, 4.0);
  EXPECT_DOUBLE_EQ(w.sample(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.sample(1.0), 2.0);
  EXPECT_DOUBLE_EQ(w.sample(2.0), 4.0);
  EXPECT_DOUBLE_EQ(w.sample(3.0), 4.0);  // clamp
}

TEST(Pwl, StepFactory) {
  const Pwl w = Pwl::step(0.0, 1.2, 1.0, 0.1);
  EXPECT_DOUBLE_EQ(w.sample(0.5), 0.0);
  EXPECT_DOUBLE_EQ(w.sample(1.05), 0.6);
  EXPECT_DOUBLE_EQ(w.sample(2.0), 1.2);
}

TEST(Pwl, NonDecreasingTimeEnforced) {
  Pwl w;
  w.append(1.0, 0.0);
  EXPECT_THROW(w.append(0.5, 1.0), std::invalid_argument);
}

TEST(Pwl, SameTimeReplacesValue) {
  Pwl w;
  w.append(0.0, 0.0);
  w.append(1.0, 1.0);
  w.append(1.0, 2.0);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w.sample(1.0), 2.0);
}

TEST(Pwl, RisingCrossing) {
  const Pwl w = Pwl::step(0.0, 1.0, 0.0, 1.0);  // ramp 0..1 over [0,1]
  const auto t = w.crossing(0.5, Edge::kRising);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 0.5, 1e-12);
}

TEST(Pwl, FallingCrossingIgnoredByRisingSearch) {
  Pwl w;
  w.append(0.0, 1.0);
  w.append(1.0, 0.0);
  EXPECT_FALSE(w.crossing(0.5, Edge::kRising).has_value());
  ASSERT_TRUE(w.crossing(0.5, Edge::kFalling).has_value());
}

TEST(Pwl, CrossingFromOffset) {
  Pwl w;  // rises, falls, rises
  w.append(0.0, 0.0);
  w.append(1.0, 1.0);
  w.append(2.0, 0.0);
  w.append(3.0, 1.0);
  const auto t = w.crossing(0.5, Edge::kRising, 1.5);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 2.5, 1e-12);
}

TEST(Pwl, LastCrossing) {
  Pwl w;
  w.append(0.0, 0.0);
  w.append(1.0, 1.0);
  w.append(2.0, 0.0);
  w.append(3.0, 1.0);
  const auto t = w.last_crossing(0.5, Edge::kAny);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 2.5, 1e-12);
}

TEST(Pwl, MinMaxAndTimeOfMax) {
  Pwl w;
  w.append(0.0, 0.1);
  w.append(1.0, 0.9);
  w.append(2.0, 0.3);
  EXPECT_DOUBLE_EQ(w.min_value(), 0.1);
  EXPECT_DOUBLE_EQ(w.max_value(), 0.9);
  EXPECT_DOUBLE_EQ(w.time_of_max(), 1.0);
}

TEST(Pwl, EmptyThrows) {
  const Pwl w;
  EXPECT_THROW(w.sample(0.0), std::invalid_argument);
  EXPECT_THROW(w.min_value(), std::invalid_argument);
}

TEST(Measure, PropagationDelayInverterLike) {
  // Input rises at t=1 (50% at 1.0), output falls crossing 50% at t=1.4.
  const double vdd = 1.2;
  Pwl in;
  in.append(0.0, 0.0);
  in.append(1.0 - 0.05, 0.0);
  in.append(1.0 + 0.05, vdd);
  Pwl out;
  out.append(0.0, vdd);
  out.append(1.2, vdd);
  out.append(1.6, 0.0);  // crosses 0.6 V at 1.4
  const auto d = propagation_delay(in, out, vdd, Edge::kRising, Edge::kFalling);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(*d, 0.4, 1e-9);
}

TEST(Measure, PropagationDelayNoOutputTransition) {
  const double vdd = 1.0;
  const Pwl in = Pwl::step(0.0, vdd, 1.0, 0.1);
  const Pwl out = Pwl::constant(vdd);
  EXPECT_FALSE(propagation_delay(in, out, vdd, Edge::kRising, Edge::kFalling).has_value());
}

TEST(Measure, TransitionTimeRising) {
  const Pwl w = Pwl::step(0.0, 1.0, 0.0, 1.0);
  const auto tt = transition_time(w, 1.0, Edge::kRising);
  ASSERT_TRUE(tt.has_value());
  EXPECT_NEAR(*tt, 0.8, 1e-12);  // 10% to 90% of a linear ramp
}

TEST(Measure, TransitionTimeFalling) {
  Pwl w;
  w.append(0.0, 1.0);
  w.append(2.0, 0.0);
  const auto tt = transition_time(w, 1.0, Edge::kFalling);
  ASSERT_TRUE(tt.has_value());
  EXPECT_NEAR(*tt, 1.6, 1e-12);
}

TEST(Measure, TransitionTimeRejectsAnyEdge) {
  const Pwl w = Pwl::step(0.0, 1.0, 0.0, 1.0);
  EXPECT_THROW(transition_time(w, 1.0, Edge::kAny), std::invalid_argument);
}

TEST(Pwl, StepRejectsNegativeRamp) {
  EXPECT_THROW(Pwl::step(0.0, 1.0, 0.0, -1.0), std::invalid_argument);
}

TEST(Pwl, AppendRejectsNonFinite) {
  Pwl w;
  EXPECT_THROW(w.append(0.0, std::nan("")), std::invalid_argument);
  EXPECT_THROW(w.append(std::numeric_limits<double>::infinity(), 1.0), std::invalid_argument);
}

TEST(Measure, PercentDegradation) {
  EXPECT_NEAR(percent_degradation(1.0, 1.05), 5.0, 1e-12);
  EXPECT_NEAR(percent_degradation(2.0, 2.0), 0.0, 1e-12);
  EXPECT_THROW(percent_degradation(0.0, 1.0), std::invalid_argument);
}

TEST(Pwl, IntegralOfConstant) {
  const Pwl w = Pwl::constant(2.0);
  EXPECT_DOUBLE_EQ(w.integral(0.0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(w.integral(1.0, 1.0), 0.0);
}

TEST(Pwl, IntegralOfRamp) {
  Pwl w;
  w.append(0.0, 0.0);
  w.append(2.0, 4.0);
  EXPECT_DOUBLE_EQ(w.integral(0.0, 2.0), 4.0);       // triangle
  EXPECT_DOUBLE_EQ(w.integral(0.0, 1.0), 1.0);       // partial triangle
  EXPECT_DOUBLE_EQ(w.integral(2.0, 4.0), 8.0);       // clamped tail
  EXPECT_THROW(w.integral(2.0, 1.0), std::invalid_argument);
}

TEST(Vcd, EmitsHeaderAndChanges) {
  Trace tr;
  Pwl& a = tr.channel("out");
  a.append(0.0, 0.0);
  a.append(1e-9, 1.2);
  Pwl& b = tr.channel("vgnd");
  b.append(0.0, 0.05);
  b.append(2e-9, 0.05);
  std::ostringstream os;
  write_vcd(os, tr);
  const std::string vcd = os.str();
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var real 64"), std::string::npos);
  EXPECT_NE(vcd.find("out"), std::string::npos);
  EXPECT_NE(vcd.find("vgnd"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("#1000"), std::string::npos);  // 1 ns = 1000 ps ticks
  EXPECT_NE(vcd.find("r1.2"), std::string::npos);
}

TEST(Vcd, SuppressesNoChangeSamples) {
  Trace tr;
  Pwl& a = tr.channel("flat");
  a.append(0.0, 1.0);
  a.append(1e-9, 1.0);
  a.append(2e-9, 1.0);
  std::ostringstream os;
  write_vcd(os, tr);
  // Only the initial value is dumped; later ticks produce no blocks.
  const std::string vcd = os.str();
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_EQ(vcd.find("#1000"), std::string::npos);
}

TEST(Vcd, EmptyTraceThrows) {
  Trace tr;
  std::ostringstream os;
  EXPECT_THROW(write_vcd(os, tr), std::invalid_argument);
}

TEST(Trace, ChannelCreationAndLookup) {
  Trace tr;
  tr.channel("out").append(0.0, 1.0);
  EXPECT_TRUE(tr.has("out"));
  EXPECT_FALSE(tr.has("missing"));
  EXPECT_THROW(tr.get("missing"), std::invalid_argument);
  EXPECT_DOUBLE_EQ(tr.get("out").sample(0.0), 1.0);
  EXPECT_EQ(tr.names().size(), 1u);
}

}  // namespace
}  // namespace mtcmos
