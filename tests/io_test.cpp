// Tests for the .mtn netlist text format and the SPICE deck exporter.

#include <gtest/gtest.h>

#include <sstream>

#include "circuits/generators.hpp"
#include "models/technology.hpp"
#include "netlist/expand.hpp"
#include "netlist/io.hpp"
#include "spice/deck.hpp"
#include "util/units.hpp"

namespace mtcmos::netlist {
namespace {

using mtcmos::units::fF;

TEST(ParseEng, Suffixes) {
  EXPECT_DOUBLE_EQ(parse_eng("50f"), 50e-15);
  EXPECT_DOUBLE_EQ(parse_eng("1.2p"), 1.2e-12);
  EXPECT_DOUBLE_EQ(parse_eng("3n"), 3e-9);
  EXPECT_DOUBLE_EQ(parse_eng("2.1u"), 2.1e-6);
  EXPECT_DOUBLE_EQ(parse_eng("5m"), 5e-3);
  EXPECT_DOUBLE_EQ(parse_eng("2k"), 2e3);
  EXPECT_DOUBLE_EQ(parse_eng("3e-15"), 3e-15);
  EXPECT_DOUBLE_EQ(parse_eng("42"), 42.0);
}

TEST(ParseEng, Malformed) {
  EXPECT_THROW(parse_eng(""), std::invalid_argument);
  EXPECT_THROW(parse_eng("abc"), std::invalid_argument);
  EXPECT_THROW(parse_eng("1.5x"), std::invalid_argument);
  EXPECT_THROW(parse_eng("1.5ff"), std::invalid_argument);
}

TEST(NetlistIo, ParseBasicCells) {
  std::istringstream in(R"(
# a comment
tech paper-0.7um
input a b
nand2 g1 a b
inv g2 g1.out
load g2.out 30f
output g2.out
)");
  const ParsedNetlist parsed = read_netlist(in);
  EXPECT_EQ(parsed.nl.gate_count(), 2);
  EXPECT_EQ(parsed.nl.inputs().size(), 2u);
  ASSERT_EQ(parsed.outputs.size(), 1u);
  EXPECT_EQ(parsed.outputs[0], "g2.out");
  const auto out = parsed.nl.find_net("g2.out");
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(parsed.nl.extra_load(*out), 30.0 * fF, 1e-20);
  // AND of a,b after NAND+INV.
  const auto vals = parsed.nl.evaluate({true, true});
  EXPECT_TRUE(vals[static_cast<std::size_t>(*out)]);
}

TEST(NetlistIo, ParseGenericGateExpression) {
  std::istringstream in(R"(
tech paper-0.3um
input a b c
gate g1 out 0.9u 1.8u (p (s a b) c)
output out
)");
  const ParsedNetlist parsed = read_netlist(in);
  ASSERT_EQ(parsed.nl.gate_count(), 1);
  const Gate& g = parsed.nl.gate(0);
  EXPECT_NEAR(g.wn, 0.9e-6, 1e-15);
  EXPECT_NEAR(g.wp, 1.8e-6, 1e-15);
  // out = NOT(a b + c)
  for (int v = 0; v < 8; ++v) {
    const bool a = (v & 1) != 0, b = (v & 2) != 0, c = (v & 4) != 0;
    const auto vals = parsed.nl.evaluate({a, b, c});
    EXPECT_EQ(vals[static_cast<std::size_t>(g.output)], !((a && b) || c)) << v;
  }
  EXPECT_EQ(parsed.nl.tech().name, "paper-0.3um");
}

TEST(NetlistIo, ParseMirrorFa) {
  std::istringstream in(R"(
tech paper-0.7um
input a b ci
fa f0 a b ci
output f0.s f0.cout
)");
  const ParsedNetlist parsed = read_netlist(in);
  EXPECT_EQ(parsed.nl.transistor_count(), 28);
  const auto vals = parsed.nl.evaluate({true, true, false});
  EXPECT_FALSE(vals[static_cast<std::size_t>(*parsed.nl.find_net("f0.s"))]);
  EXPECT_TRUE(vals[static_cast<std::size_t>(*parsed.nl.find_net("f0.cout"))]);
}

TEST(NetlistIo, ErrorsCarryLineNumbers) {
  std::istringstream bad_kw("tech paper-0.7um\nfrobnicate x y\n");
  try {
    read_netlist(bad_kw);
    FAIL() << "expected parse failure";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(NetlistIo, RejectsBadInputs) {
  std::istringstream bad_tech("tech unobtainium-5nm\n");
  EXPECT_THROW(read_netlist(bad_tech), std::invalid_argument);
  std::istringstream bad_expr("input a\ngate g out 1u 2u (q a)\n");
  EXPECT_THROW(read_netlist(bad_expr), std::invalid_argument);
  std::istringstream unbalanced("input a b\ngate g out 1u 2u (s a b\n");
  EXPECT_THROW(read_netlist(unbalanced), std::invalid_argument);
  std::istringstream redrive("input a\ninv g1 a\ninv g2 a\n");
  // both write to distinct nets g1.out/g2.out -> fine; now force conflict:
  EXPECT_NO_THROW(read_netlist(redrive));
  std::istringstream conflict("input a\ngate g1 out 1u 2u a\ngate g2 out 1u 2u a\n");
  EXPECT_THROW(read_netlist(conflict), std::invalid_argument);
}

TEST(NetlistIo, TableDrivenBadDecks) {
  struct Case {
    const char* label;
    const char* deck;
    const char* expect_substring;
  };
  const Case cases[] = {
      {"non-numeric gate width", "input a\ngate g out abc 2u a\n", "not a number"},
      {"non-numeric load", "input a\ninv g1 a\nload g1.out huge\n", "not a number"},
      {"out-of-range number", "input a\ngate g out 1e999999 2u a\n", "out of range"},
      {"duplicate device name", "input a\ninv g1 a\ninv g1 a\n", "duplicate device name"},
      {"duplicate gate/fa name", "input a b c\nfa u1 a b c\ninv u1 a\n",
       "duplicate device name"},
      {"dangling fanin net", "input a\nnand2 g1 a phantom\n", "undriven"},
      {"multiple tech lines", "tech paper-0.7um\ntech paper-0.7um\ninput a\ninv g1 a\n",
       "multiple tech lines"},
  };
  for (const Case& c : cases) {
    std::istringstream in(c.deck);
    try {
      read_netlist(in);
      FAIL() << c.label << ": expected parse failure";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(c.expect_substring), std::string::npos)
          << c.label << ": message was: " << what;
      EXPECT_NE(what.find("netlist line"), std::string::npos)
          << c.label << ": message lacks a line number: " << what;
    }
  }
}

TEST(NetlistIo, BadDeckLineNumbersPointAtOffendingLine) {
  std::istringstream in("input a\ninv g1 a\nload g1.out nan-sense\n");
  try {
    read_netlist(in);
    FAIL() << "expected parse failure";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(NetlistIo, Tie0DeclaresIntentionalConstantZero) {
  // Without the declaration the undriven net is a parse error; with it,
  // the net evaluates as constant 0 (the documented semantics).
  std::istringstream bad("input a\nnand2 g1 a t\n");
  EXPECT_THROW(read_netlist(bad), std::invalid_argument);
  std::istringstream good("input a\ntie0 t\nnand2 g1 a t\n");
  const ParsedNetlist parsed = read_netlist(good);
  // NAND with one input stuck at 0 -> output constant 1.
  const auto vals = parsed.nl.evaluate({true});
  EXPECT_TRUE(vals[static_cast<std::size_t>(*parsed.nl.find_net("g1.out"))]);
}

TEST(NetlistIo, RoundTripPreservesStructureAndFunction) {
  // Build a mixed netlist programmatically, write, re-read, compare.
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  std::ostringstream os;
  std::vector<std::string> outs;
  for (const auto s : adder.sum) outs.push_back(adder.netlist.net_name(s));
  write_netlist(os, adder.netlist, outs);

  std::istringstream in(os.str());
  const ParsedNetlist round = read_netlist(in);
  EXPECT_EQ(round.nl.gate_count(), adder.netlist.gate_count());
  EXPECT_EQ(round.nl.transistor_count(), adder.netlist.transistor_count());
  EXPECT_EQ(round.outputs, outs);
  // Function must match on the whole input space.
  for (int v = 0; v < 16; ++v) {
    std::vector<bool> bits(4);
    for (int k = 0; k < 4; ++k) bits[static_cast<std::size_t>(k)] = ((v >> k) & 1) != 0;
    const auto a = adder.netlist.evaluate(bits);
    const auto b = round.nl.evaluate(bits);
    for (const std::string& name : outs) {
      EXPECT_EQ(a[static_cast<std::size_t>(*adder.netlist.find_net(name))],
                b[static_cast<std::size_t>(*round.nl.find_net(name))])
          << "net " << name << " v=" << v;
    }
  }
  // Loads preserved.
  for (const std::string& name : outs) {
    EXPECT_NEAR(round.nl.extra_load(*round.nl.find_net(name)),
                adder.netlist.extra_load(*adder.netlist.find_net(name)), 1e-20);
  }
}

TEST(NetlistIo, MissingFileThrows) {
  EXPECT_THROW(read_netlist_file("/nonexistent/file.mtn"), std::invalid_argument);
}

}  // namespace
}  // namespace mtcmos::netlist

namespace mtcmos::spice {
namespace {

TEST(SpiceDeck, SafeNames) {
  EXPECT_EQ(spice_safe_name("0"), "0");
  EXPECT_EQ(spice_safe_name("fa0.s"), "fa0_s");
  EXPECT_EQ(spice_safe_name("G1#n0"), "g1_n0");
  EXPECT_EQ(spice_safe_name("123abc"), "n123abc");
}

TEST(SpiceDeck, ExportContainsAllDevices) {
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  netlist::ExpandOptions opt;
  opt.sleep_wl = 10.0;
  const auto zeros = std::vector<bool>(4, false);
  const auto ex = netlist::to_spice(adder.netlist, opt, zeros, zeros);
  std::ostringstream os;
  write_spice_deck(os, ex.circuit);
  const std::string deck = os.str();
  // Counts: every MOSFET, capacitor, source present; model cards for the
  // three distinct devices (nmos low/high, pmos low).
  std::size_t m_count = 0, model_count = 0;
  std::istringstream lines(deck);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("m", 0) == 0) ++m_count;
    if (line.rfind(".model", 0) == 0) ++model_count;
  }
  EXPECT_EQ(m_count, ex.circuit.mosfet_count());
  EXPECT_EQ(model_count, 3u);
  EXPECT_NE(deck.find(".tran"), std::string::npos);
  EXPECT_NE(deck.find(".end"), std::string::npos);
  EXPECT_NE(deck.find("level=1"), std::string::npos);
  // PMOS threshold must be exported negative.
  EXPECT_NE(deck.find("vto=-0.35"), std::string::npos);
}

TEST(SpiceDeck, PwlSourcesExported) {
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  netlist::ExpandOptions opt;
  const auto zeros = std::vector<bool>(4, false);
  const auto ones = std::vector<bool>(4, true);
  const auto ex = netlist::to_spice(adder.netlist, opt, zeros, ones);
  std::ostringstream os;
  write_spice_deck(os, ex.circuit);
  EXPECT_NE(os.str().find("pwl("), std::string::npos);
}

TEST(SpiceDeck, NodeNameCollisionsResolved) {
  // Two circuit nodes whose sanitized names collide must get distinct
  // deck names.
  Circuit ckt;
  const NodeId a = ckt.node("n.1");
  const NodeId b = ckt.node("n#1");
  ckt.add_vsource("V1", a, Pwl::constant(1.0));
  ckt.add_resistor("R1", a, b, 100.0);
  ckt.add_resistor("R2", b, kGround, 100.0);
  std::ostringstream os;
  write_spice_deck(os, ckt);
  const std::string deck = os.str();
  EXPECT_NE(deck.find("n_1"), std::string::npos);
  EXPECT_NE(deck.find("n_1_1"), std::string::npos);
}

}  // namespace
}  // namespace mtcmos::spice
