// Tests for the robustness stack as a whole, driven through the
// deterministic fault-injection harness: coded failures surface from the
// solvers, the recovery ladder retries them, sweeps isolate them, and
// deadlines bound runaway runs.  Labeled `faultinject` so sanitizer
// builds can target exactly these with `ctest -L faultinject`.

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "circuits/generators.hpp"
#include "sizing/sizing.hpp"
#include "spice/circuit.hpp"
#include "spice/engine.hpp"
#include "spice/recovery.hpp"
#include "util/faultinject.hpp"
#include "util/units.hpp"

namespace mtcmos {
namespace {

using circuits::make_ripple_adder;
using sizing::DelayEvaluator;
using sizing::SweepPolicy;
using sizing::VectorDelay;
using sizing::VectorPair;
using units::fF;
using units::ns;
using units::ps;

// Every test disarms on exit so a failing assertion cannot leak an armed
// plan into the rest of the suite.
class FaultInject : public ::testing::Test {
 protected:
  void TearDown() override { faultinject::disarm_all(); }
};

std::vector<std::string> adder_outputs(const circuits::RippleAdder& adder) {
  std::vector<std::string> outs;
  for (const auto s : adder.sum) outs.push_back(adder.netlist.net_name(s));
  outs.push_back(adder.netlist.net_name(adder.cout));
  return outs;
}

/// RC charge circuit: converges trivially, so any failure is injected.
spice::Circuit rc_circuit() {
  spice::Circuit ckt;
  const spice::NodeId src = ckt.node("src");
  const spice::NodeId out = ckt.node("out");
  ckt.add_vsource("V1", src, Pwl::step(0.0, 1.0, 0.0, 1.0 * ps));
  ckt.add_resistor("R1", src, out, 10e3);
  ckt.add_capacitor("C1", out, spice::kGround, 100 * fF);
  return ckt;
}

spice::TransientOptions rc_options() {
  spice::TransientOptions opt;
  opt.tstop = 4.0 * ns;
  opt.dt = 2.0 * ps;
  opt.voltage_probes = {"out"};
  return opt;
}

TEST_F(FaultInject, PlansAreScopeAddressedAndCounted) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const DelayEvaluator eval(adder.netlist, adder_outputs(adder));
  const VectorPair vp{{false, false, false, false}, {true, true, true, true}};

  faultinject::arm(faultinject::Site::kVbsRun, /*scope=*/5, /*fail_hits=*/-1);
  // Default scope does not match a plan pinned to scope 5.
  EXPECT_GT(eval.delay_at_wl(vp, 10.0), 0.0);
  EXPECT_EQ(faultinject::injected_count(), 0u);
  {
    faultinject::ScopedScope scope(5);
    try {
      eval.delay_at_wl(vp, 10.0);
      FAIL() << "expected an injected NumericalError";
    } catch (const NumericalError& e) {
      EXPECT_EQ(e.info().code, FailureCode::kInjected);
      EXPECT_EQ(e.info().site, "VbsSimulator::run");
      EXPECT_NE(e.info().context.find("injected"), std::string::npos);
    }
  }
  EXPECT_EQ(faultinject::injected_count(), 1u);
  faultinject::disarm_all();
  {
    faultinject::ScopedScope scope(5);
    EXPECT_GT(eval.delay_at_wl(vp, 10.0), 0.0);
  }
}

// The headline acceptance test: a parallel ranking over 256 vectors with
// one hard fault per reachable injection site loses exactly those three
// items, and the survivors are bit-identical to a serial no-fault run
// over the surviving subset.
TEST_F(FaultInject, RankVectorsIsolatesOneFaultPerSite) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const DelayEvaluator eval(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);
  ASSERT_EQ(vectors.size(), 256u);
  const double wl = 10.0;

  const std::vector<std::pair<faultinject::Site, std::size_t>> faults = {
      {faultinject::Site::kSweepItem, 10},
      {faultinject::Site::kVbsRun, 100},
      {faultinject::Site::kVbsBreakpoint, 200},
  };
  // Hard faults: they fire on every attempt, so the per-item retry cannot
  // save these three items.
  for (const auto& [site, scope] : faults) {
    faultinject::arm(site, static_cast<std::int64_t>(scope), /*fail_hits=*/-1);
  }

  util::ThreadPool pool(4);
  SweepReport report;
  const auto ranked =
      sizing::rank_vectors(eval, vectors, wl, SweepPolicy{}, report, &pool);

  EXPECT_EQ(report.total, 256u);
  EXPECT_EQ(report.failed, 3u);
  EXPECT_EQ(report.succeeded, 253u);
  EXPECT_EQ(report.recovered, 0u);
  ASSERT_EQ(report.failures.size(), 3u);
  // The serial reduction visits indices in order, so failures are sorted.
  EXPECT_EQ(report.failures[0].first, 10u);
  EXPECT_EQ(report.failures[1].first, 100u);
  EXPECT_EQ(report.failures[2].first, 200u);
  for (const auto& [index, info] : report.failures) {
    EXPECT_EQ(info.code, FailureCode::kInjected) << "index " << index;
    EXPECT_EQ(info.attempts, SweepPolicy{}.max_attempts) << "index " << index;
  }

  // No-fault serial reference over the surviving subset.
  faultinject::disarm_all();
  std::vector<VectorPair> surviving;
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    if (i != 10 && i != 100 && i != 200) surviving.push_back(vectors[i]);
  }
  util::ThreadPool serial(1);
  const auto reference = sizing::rank_vectors(eval, surviving, wl, &serial);

  ASSERT_EQ(ranked.size(), reference.size());
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i].pair.v0, reference[i].pair.v0) << "rank " << i;
    EXPECT_EQ(ranked[i].pair.v1, reference[i].pair.v1) << "rank " << i;
    EXPECT_EQ(ranked[i].delay_cmos, reference[i].delay_cmos) << "rank " << i;
    EXPECT_EQ(ranked[i].delay_mtcmos, reference[i].delay_mtcmos) << "rank " << i;
    EXPECT_EQ(ranked[i].degradation_pct, reference[i].degradation_pct) << "rank " << i;
  }
}

// "Fail vector 37's first solve, succeed on the retry": an exhaustible
// single-hit plan is absorbed by the sweep's per-item retry, the report
// histogram shows the recovery, and the ranking is unchanged.
TEST_F(FaultInject, SweepRetryAbsorbsSingleHitFault) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const DelayEvaluator eval(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);
  const double wl = 10.0;

  util::ThreadPool pool(4);
  faultinject::arm(faultinject::Site::kSweepItem, /*scope=*/37, /*fail_hits=*/1);
  SweepReport report;
  const auto ranked =
      sizing::rank_vectors(eval, vectors, wl, SweepPolicy{}, report, &pool);

  EXPECT_EQ(faultinject::injected_count(), 1u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.recovered, 1u);
  EXPECT_EQ(report.succeeded, vectors.size() - 1);
  ASSERT_EQ(report.rung_histogram.size(), 2u);
  EXPECT_EQ(report.rung_histogram[0], vectors.size() - 1);
  EXPECT_EQ(report.rung_histogram[1], 1u);

  faultinject::disarm_all();
  util::ThreadPool serial(1);
  const auto reference = sizing::rank_vectors(eval, vectors, wl, &serial);
  ASSERT_EQ(ranked.size(), reference.size());
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i].degradation_pct, reference[i].degradation_pct) << "rank " << i;
    EXPECT_EQ(ranked[i].pair.v0, reference[i].pair.v0) << "rank " << i;
  }
}

// With isolation off a sweep keeps the pre-robustness contract: the first
// failure is rethrown.
TEST_F(FaultInject, IsolationOffRethrowsFirstFailure) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const DelayEvaluator eval(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);

  faultinject::arm(faultinject::Site::kSweepItem, /*scope=*/42, /*fail_hits=*/-1);
  util::ThreadPool serial(1);
  SweepReport report;
  SweepPolicy hard_stop;
  hard_stop.isolate = false;
  hard_stop.max_attempts = 1;
  EXPECT_THROW(sizing::rank_vectors(eval, vectors, 10.0, hard_stop, report, &serial),
               NumericalError);
}

// A seeded Newton divergence recovers through the ladder: attempt 1 eats
// the single-hit fault, attempt 2 (the backward-Euler rung) succeeds.
TEST_F(FaultInject, RecoveryLadderRecoversSeededNewtonDivergence) {
  spice::Circuit ckt = rc_circuit();
  spice::Engine eng(ckt);

  faultinject::arm(faultinject::Site::kNewtonSolve, faultinject::kAnyScope,
                   /*fail_hits=*/1);
  const auto outcome = spice::run_transient_recovered(eng, rc_options());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_GT(outcome.value->steps, 0u);

  // Driven into a report, the recovery lands on rung 1 of the histogram.
  SweepReport report;
  report.add(0, outcome);
  EXPECT_EQ(report.recovered, 1u);
  ASSERT_EQ(report.rung_histogram.size(), 2u);
  EXPECT_EQ(report.rung_histogram[1], 1u);
}

TEST_F(FaultInject, LadderOffReportsNewtonDiverged) {
  spice::Circuit ckt = rc_circuit();
  spice::Engine eng(ckt);

  faultinject::arm(faultinject::Site::kNewtonSolve, faultinject::kAnyScope,
                   /*fail_hits=*/1);
  const auto outcome =
      spice::run_transient_recovered(eng, rc_options(), spice::RecoveryPolicy::off());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(outcome.failure.code, FailureCode::kNewtonDiverged);
  EXPECT_EQ(outcome.failure.site, "Engine::newton_solve");
}

// Injected faults carry each site's natural code: the LU pivot site
// classifies as a singular matrix.
TEST_F(FaultInject, LuSiteClassifiesAsSingularMatrix) {
  spice::Circuit ckt = rc_circuit();
  spice::Engine eng(ckt);
  faultinject::arm(faultinject::Site::kSparseLuFactorize, faultinject::kAnyScope,
                   /*fail_hits=*/1);
  try {
    eng.dc_operating_point();
    FAIL() << "expected an injected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.info().code, FailureCode::kSingularMatrix);
    EXPECT_EQ(e.info().site, "SparseLu::factorize");
  }
}

// A runaway transient degrades to kDeadlineExceeded instead of hanging,
// and the ladder treats that as terminal: escalating the integrator
// cannot buy back an exhausted budget.
TEST_F(FaultInject, RunawayTransientHitsDeadlineWithoutEscalation) {
  spice::Circuit ckt = rc_circuit();
  spice::Engine eng(ckt);
  spice::TransientOptions opt = rc_options();
  opt.tstop = 1.0;  // ~5e11 fixed steps: a runaway by construction
  opt.max_steps = 200;

  try {
    eng.run_transient(opt);
    FAIL() << "expected kDeadlineExceeded";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.info().code, FailureCode::kDeadlineExceeded);
    EXPECT_NE(e.info().context.find("step budget"), std::string::npos);
  }

  const auto outcome = spice::run_transient_recovered(eng, opt);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.attempts, 1);  // terminal: no ladder escalation
  EXPECT_EQ(outcome.failure.code, FailureCode::kDeadlineExceeded);
}

TEST_F(FaultInject, WallClockDeadlineReportsDeadlineExceeded) {
  spice::Circuit ckt = rc_circuit();
  spice::Engine eng(ckt);
  spice::TransientOptions opt = rc_options();
  opt.tstop = 1.0;
  opt.deadline_s = 50e-3;

  try {
    eng.run_transient(opt);
    FAIL() << "expected kDeadlineExceeded";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.info().code, FailureCode::kDeadlineExceeded);
    EXPECT_NE(e.info().context.find("wall-clock"), std::string::npos);
  }
}

// The recovery policy's budgets flow into sweeps through TransientOptions
// left at their defaults -- and a deadline inside a fault-isolated sweep
// only loses that item, not the pool.
TEST_F(FaultInject, DeadlineInsideSweepOnlyLosesThatItem) {
  const auto adder = make_ripple_adder(tech07(), 2);
  core::VbsOptions base;
  // Any switching transition needs more than one breakpoint; only the 16
  // identity transitions (v0 == v1) schedule none and stay under budget.
  base.max_breakpoints = 1;
  const DelayEvaluator eval(adder.netlist, adder_outputs(adder), base);
  const auto vectors = sizing::all_vector_pairs(4);

  util::ThreadPool pool(4);
  SweepReport report;
  const auto ranked =
      sizing::rank_vectors(eval, vectors, 10.0, SweepPolicy{}, report, &pool);
  EXPECT_TRUE(ranked.empty());  // survivors never switch -> dropped
  EXPECT_EQ(report.total, 256u);
  EXPECT_EQ(report.failed, 240u);
  EXPECT_EQ(report.succeeded, 16u);
  ASSERT_FALSE(report.failures.empty());
  for (const auto& [index, info] : report.failures) {
    EXPECT_EQ(info.code, FailureCode::kDeadlineExceeded) << "index " << index;
  }
}

}  // namespace
}  // namespace mtcmos
