// Unit tests for util::Journal: append/replay round-trips, torn-tail
// truncation, update-in-place (last record wins), compaction via atomic
// replacement, and the failure contract (bad keys, closed journals).

#include "util/journal.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/faultinject.hpp"

namespace {

using mtcmos::util::format_journal_record;
using mtcmos::util::Journal;
using mtcmos::util::JournalOptions;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("journal_test." +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "." +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    mtcmos::faultinject::disarm_all();
    std::filesystem::remove_all(dir_);
  }

  std::string path(const std::string& name = "j.mtj") const { return (dir_ / name).string(); }

  std::string slurp(const std::string& p) const {
    std::ifstream is(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
  }

  std::filesystem::path dir_;
};

TEST_F(JournalTest, AppendFindRoundTrip) {
  Journal j;
  j.open(path());
  EXPECT_TRUE(j.is_open());
  EXPECT_EQ(j.size(), 0u);
  j.append("alpha", "1");
  j.append("beta", "two");
  ASSERT_NE(j.find("alpha"), nullptr);
  EXPECT_EQ(*j.find("alpha"), "1");
  ASSERT_NE(j.find("beta"), nullptr);
  EXPECT_EQ(*j.find("beta"), "two");
  EXPECT_EQ(j.find("gamma"), nullptr);
  EXPECT_EQ(j.size(), 2u);
}

TEST_F(JournalTest, LaterRecordForSameKeyWins) {
  Journal j;
  j.open(path());
  j.append("k", "first");
  j.append("k", "second");
  EXPECT_EQ(*j.find("k"), "second");
  EXPECT_EQ(j.size(), 1u);
  j.close();

  Journal replayed;
  replayed.open(path());
  EXPECT_EQ(replayed.replayed_records(), 2u);
  EXPECT_EQ(*replayed.find("k"), "second");
  EXPECT_EQ(replayed.size(), 1u);
}

TEST_F(JournalTest, ReplaySurvivesCloseAndReopen) {
  {
    Journal j;
    j.open(path());
    for (int i = 0; i < 100; ++i) j.append("key" + std::to_string(i), std::to_string(i * i));
  }
  Journal j;
  j.open(path());
  EXPECT_EQ(j.replayed_records(), 100u);
  EXPECT_EQ(j.truncated_bytes(), 0u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(j.find("key" + std::to_string(i)), nullptr) << i;
    EXPECT_EQ(*j.find("key" + std::to_string(i)), std::to_string(i * i));
  }
}

TEST_F(JournalTest, BinaryValuesAndNewlinesRoundTrip) {
  Journal j;
  j.open(path());
  const std::string value("line1\nline2\0binary", 18);
  j.append("multi\nline\nkey", value);
  j.close();
  Journal r;
  r.open(path());
  ASSERT_NE(r.find("multi\nline\nkey"), nullptr);
  EXPECT_EQ(*r.find("multi\nline\nkey"), value);
}

TEST_F(JournalTest, TornTailIsTruncatedAtEveryOffset) {
  // Write two good records and one final record, then truncate the file
  // at every byte offset inside the final record: replay must keep the
  // two good records and drop the torn tail.
  {
    Journal j;
    j.open(path());
    j.append("a", "AA");
    j.append("b", "BB");
    j.append("victim", "the torn one");
  }
  const std::string full = slurp(path());
  const std::size_t tail = format_journal_record("victim", "the torn one").size();
  const std::size_t keep = full.size() - tail;
  for (std::size_t cut = keep; cut < full.size(); ++cut) {
    const std::string p = path("torn_" + std::to_string(cut) + ".mtj");
    std::ofstream os(p, std::ios::binary);
    os.write(full.data(), static_cast<std::streamsize>(cut));
    os.close();
    Journal j;
    j.open(p);
    EXPECT_EQ(j.replayed_records(), 2u) << "cut at " << cut;
    EXPECT_EQ(j.truncated_bytes(), cut - keep) << "cut at " << cut;
    EXPECT_EQ(j.find("victim"), nullptr) << "cut at " << cut;
    EXPECT_EQ(*j.find("a"), "AA");
    EXPECT_EQ(*j.find("b"), "BB");
    // The torn bytes are gone from disk: appends after replay start from
    // a clean record boundary.
    j.append("after", "resume");
    j.close();
    Journal r;
    r.open(p);
    EXPECT_EQ(r.replayed_records(), 3u) << "cut at " << cut;
    EXPECT_EQ(*r.find("after"), "resume");
  }
}

TEST_F(JournalTest, CorruptedInteriorByteStopsReplayThere) {
  {
    Journal j;
    j.open(path());
    j.append("a", "AA");
    j.append("b", "BB");
    j.append("c", "CC");
  }
  std::string data = slurp(path());
  // Flip a payload byte of the second record ("b" -> corrupt): its CRC
  // fails, so replay keeps only record one and truncates the rest.
  const std::size_t first = format_journal_record("a", "AA").size();
  const std::string second = format_journal_record("b", "BB");
  data[first + second.size() - 2] ^= 0x01;  // inside the "BB" payload
  {
    std::ofstream os(path(), std::ios::binary);
    os.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  Journal j;
  j.open(path());
  EXPECT_EQ(j.replayed_records(), 1u);
  EXPECT_EQ(*j.find("a"), "AA");
  EXPECT_EQ(j.find("b"), nullptr);
  EXPECT_EQ(j.find("c"), nullptr);
  EXPECT_GT(j.truncated_bytes(), 0u);
}

TEST_F(JournalTest, CompactKeepsLatestValuesOnly) {
  Journal j;
  j.open(path());
  for (int round = 0; round < 10; ++round) {
    for (int k = 0; k < 5; ++k) {
      j.append("key" + std::to_string(k), "round" + std::to_string(round));
    }
  }
  const auto before = std::filesystem::file_size(path());
  j.compact();
  const auto after = std::filesystem::file_size(path());
  EXPECT_LT(after, before);
  EXPECT_EQ(j.size(), 5u);
  for (int k = 0; k < 5; ++k) EXPECT_EQ(*j.find("key" + std::to_string(k)), "round9");
  // Still appendable after the fd swap, and the result replays.
  j.append("post", "compact");
  j.close();
  Journal r;
  r.open(path());
  EXPECT_EQ(r.replayed_records(), 6u);
  EXPECT_EQ(*r.find("post"), "compact");
  EXPECT_EQ(*r.find("key0"), "round9");
}

TEST_F(JournalTest, EmptyKeyAndClosedJournalThrow) {
  Journal j;
  EXPECT_THROW(j.append("k", "v"), std::runtime_error);  // never opened
  j.open(path());
  EXPECT_THROW(j.append("", "v"), std::invalid_argument);
  j.close();
  EXPECT_THROW(j.append("k", "v"), std::runtime_error);
  EXPECT_THROW(j.compact(), std::runtime_error);
}

TEST_F(JournalTest, FsyncEveryRecordAndNeverBothWork) {
  JournalOptions every;
  every.fsync_every = 1;
  Journal j1;
  j1.open(path("every.mtj"), every);
  j1.append("a", "1");
  j1.append("b", "2");
  j1.close();

  JournalOptions never;
  never.fsync_every = 0;
  never.fsync_interval_s = 0.0;
  Journal j2;
  j2.open(path("never.mtj"), never);
  j2.append("a", "1");
  j2.flush();
  j2.close();

  Journal r;
  r.open(path("every.mtj"));
  EXPECT_EQ(r.replayed_records(), 2u);
  r.open(path("never.mtj"));
  EXPECT_EQ(r.replayed_records(), 1u);
}

TEST_F(JournalTest, ConcurrentAppendsAllSurvive) {
  Journal j;
  j.open(path());
  constexpr int kThreads = 8, kPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&j, t] {
      for (int i = 0; i < kPerThread; ++i) {
        j.append("t" + std::to_string(t) + ":" + std::to_string(i), std::to_string(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  j.close();
  Journal r;
  r.open(path());
  EXPECT_EQ(r.replayed_records(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(r.truncated_bytes(), 0u);
  EXPECT_EQ(r.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST_F(JournalTest, CompactRacingConcurrentAppendsLosesNothing) {
  // compact() swaps the fd under the same mutex append() takes, so an
  // append landing mid-compaction goes to either the old file (then the
  // compaction rewrite includes it) or the new one -- never a torn or
  // dropped record.  Hammer the race, then replay and count.
  Journal j;
  j.open(path());
  constexpr int kThreads = 4, kPerThread = 150;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&j, t] {
      for (int i = 0; i < kPerThread; ++i) {
        j.append("t" + std::to_string(t) + ":" + std::to_string(i), std::to_string(i));
        j.append("hot", std::to_string(t * kPerThread + i));  // contended key
      }
    });
  }
  std::thread compactor([&j] {
    for (int c = 0; c < 25; ++c) {
      j.compact();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& w : workers) w.join();
  compactor.join();
  j.compact();  // final compaction over the quiesced journal
  j.close();

  Journal r;
  r.open(path());
  EXPECT_EQ(r.truncated_bytes(), 0u);
  EXPECT_EQ(r.size(), static_cast<std::size_t>(kThreads * kPerThread) + 1);
  // Compacted: exactly one record per distinct key survives on disk.
  EXPECT_EQ(r.replayed_records(), r.size());
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const std::string* v = r.find("t" + std::to_string(t) + ":" + std::to_string(i));
      ASSERT_NE(v, nullptr) << "t" << t << ":" << i;
      EXPECT_EQ(*v, std::to_string(i));
    }
  }
  EXPECT_NE(r.find("hot"), nullptr);
}

TEST_F(JournalTest, InjectedAppendFaultLeavesValidJournal) {
  Journal j;
  j.open(path());
  j.append("before", "ok");
  mtcmos::faultinject::arm(mtcmos::faultinject::Site::kJournalAppend,
                           mtcmos::faultinject::kAnyScope, 1);
  EXPECT_THROW(j.append("doomed", "x"), mtcmos::NumericalError);
  j.append("after", "ok");
  j.close();
  Journal r;
  r.open(path());
  EXPECT_EQ(r.replayed_records(), 2u);
  EXPECT_EQ(r.find("doomed"), nullptr);
  EXPECT_EQ(*r.find("before"), "ok");
  EXPECT_EQ(*r.find("after"), "ok");
}

TEST_F(JournalTest, ForEachVisitsLatestPerKey) {
  Journal j;
  j.open(path());
  j.append("x", "old");
  j.append("x", "new");
  j.append("y", "only");
  std::size_t visited = 0;
  j.for_each([&](const std::string& key, const std::string& value) {
    ++visited;
    if (key == "x") EXPECT_EQ(value, "new");
    if (key == "y") EXPECT_EQ(value, "only");
  });
  EXPECT_EQ(visited, 2u);
}

// Durability regression (PR7): a crash right after creating a journal
// must not lose the file itself.  open() O_CREATs the file and then
// fsyncs the PARENT DIRECTORY, so the new directory entry is on disk
// before the first append -- without it, a power cut after open() could
// roll back the file's existence even though appends were fsynced.
// (compact() has the matching ordering: fsync temp file, rename, fsync
// parent dir; and fsync_parent_dir retries EINTR on open and fsync.)
// The durable-ordering side is not observable in a unit test; what is
// observable -- the file existing immediately after open(), before any
// append -- is pinned here.
TEST_F(JournalTest, OpenCreatesTheFileEagerly) {
  const std::string p = path("fresh.mtj");
  ASSERT_FALSE(std::filesystem::exists(p));
  Journal j;
  j.open(p);
  EXPECT_TRUE(std::filesystem::exists(p)) << "directory entry must exist before first append";
  j.append("k", "v");
  j.close();
  Journal again;
  again.open(p);
  ASSERT_NE(again.find("k"), nullptr);
  EXPECT_EQ(*again.find("k"), "v");
}

TEST_F(JournalTest, MergeJournalFileDedupsSkipsAndCounts) {
  Journal source;
  source.open(path("source.mtj"));
  source.append("shared-same", "1");
  source.append("shared-stale", "old");
  source.append("shared-stale", "new");  // latest per key wins
  source.append("hb:0", "beat");
  source.append("fresh", "f");
  source.close();

  Journal dest;
  dest.open(path("dest.mtj"));
  dest.append("shared-same", "1");    // identical -> not re-appended
  dest.append("shared-stale", "old");  // differs -> source's latest appended
  const std::size_t appended = mtcmos::util::merge_journal_file(
      dest, path("source.mtj"),
      [](const std::string& key) { return key.rfind("hb:", 0) == 0; });
  EXPECT_EQ(appended, 2u);  // shared-stale + fresh
  EXPECT_EQ(dest.size(), 3u);
  EXPECT_EQ(*dest.find("shared-same"), "1");
  EXPECT_EQ(*dest.find("shared-stale"), "new");
  EXPECT_EQ(*dest.find("fresh"), "f");
  EXPECT_EQ(dest.find("hb:0"), nullptr);
}

TEST_F(JournalTest, MergeJournalFileAppendsInSortedKeyOrder) {
  Journal source;
  source.open(path("source.mtj"));
  source.append("zeta", "z");
  source.append("alpha", "a");
  source.append("mid", "m");
  source.close();

  Journal dest;
  dest.open(path("dest.mtj"));
  EXPECT_EQ(mtcmos::util::merge_journal_file(dest, path("source.mtj"), {}), 3u);
  dest.close();
  // Sorted visitation makes the merged bytes deterministic regardless of
  // the source's (insertion-ordered) record sequence.
  const std::string bytes = slurp(path("dest.mtj"));
  const auto pos_a = bytes.find(format_journal_record("alpha", "a"));
  const auto pos_m = bytes.find(format_journal_record("mid", "m"));
  const auto pos_z = bytes.find(format_journal_record("zeta", "z"));
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_m, std::string::npos);
  ASSERT_NE(pos_z, std::string::npos);
  EXPECT_LT(pos_a, pos_m);
  EXPECT_LT(pos_m, pos_z);
}

TEST_F(JournalTest, MergeJournalFileTruncatesTornSourceTail) {
  Journal source;
  source.open(path("source.mtj"));
  source.append("whole", "w");
  source.close();
  {
    // Half a record: what a SIGKILL mid-append leaves behind.
    const std::string torn = format_journal_record("torn", "lost");
    std::ofstream os(path("source.mtj"), std::ios::binary | std::ios::app);
    os.write(torn.data(), static_cast<std::streamsize>(torn.size() / 2));
  }
  Journal dest;
  dest.open(path("dest.mtj"));
  EXPECT_EQ(mtcmos::util::merge_journal_file(dest, path("source.mtj"), {}), 1u);
  EXPECT_EQ(*dest.find("whole"), "w");
  EXPECT_EQ(dest.find("torn"), nullptr);
}

TEST_F(JournalTest, MergeJournalFileMissingSourceThrows) {
  Journal dest;
  dest.open(path("dest.mtj"));
  EXPECT_THROW(mtcmos::util::merge_journal_file(dest, path("no-such.mtj"), {}),
               std::runtime_error);
}

}  // namespace
