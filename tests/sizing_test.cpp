// Tests for the sizing methodologies: baselines, bisection sizing,
// vector-space enumeration/sampling, ranking, and worst-vector search.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "models/sleep_transistor.hpp"
#include "netlist/bits.hpp"
#include "sizing/sizing.hpp"
#include "util/units.hpp"

namespace mtcmos::sizing {
namespace {

using circuits::make_ripple_adder;
using netlist::bits_from_uint;
using netlist::concat_bits;
using mtcmos::units::fF;

std::vector<std::string> adder_outputs(const circuits::RippleAdder& adder) {
  std::vector<std::string> outs;
  for (const auto s : adder.sum) outs.push_back(adder.netlist.net_name(s));
  outs.push_back(adder.netlist.net_name(adder.cout));
  return outs;
}

VectorPair adder_pair(std::uint64_t a0, std::uint64_t b0, std::uint64_t a1, std::uint64_t b1,
                      int n) {
  return {concat_bits(bits_from_uint(a0, n), bits_from_uint(b0, n)),
          concat_bits(bits_from_uint(a1, n), bits_from_uint(b1, n))};
}

TEST(Baselines, SumOfWidthsIsHuge) {
  const auto adder = make_ripple_adder(tech07(), 3);
  const double wl = sum_of_widths_wl(adder.netlist);
  // 42 NMOS transistors of default width 3 Lmin.
  EXPECT_NEAR(wl, 42.0 * 3.0, 1e-9);
}

TEST(Baselines, PeakCurrentSizingMatchesPaperExample) {
  // Section 4: 1.174 mA fixed current, 50 mV budget, 0.3 um process ->
  // "W/L greater than 500" by the paper's arithmetic; our textbook kp
  // lands in the same few-hundred region.
  const double wl = peak_current_wl(tech03(), 1.174e-3, 0.05);
  EXPECT_GT(wl, 200.0);
  EXPECT_LT(wl, 1500.0);
}

TEST(Baselines, PeakCurrentSizingScales) {
  const double wl1 = peak_current_wl(tech03(), 1e-3, 0.05);
  const double wl2 = peak_current_wl(tech03(), 2e-3, 0.05);
  const double wl3 = peak_current_wl(tech03(), 1e-3, 0.10);
  EXPECT_NEAR(wl2 / wl1, 2.0, 1e-9);  // linear in current
  EXPECT_NEAR(wl3 / wl1, 0.5, 1e-9);  // inverse in budget
  EXPECT_THROW(peak_current_wl(tech03(), -1.0, 0.05), std::invalid_argument);
}

TEST(Baselines, MeasuredPeakCurrentPositiveAndVectorDependent) {
  const auto adder = make_ripple_adder(tech07(), 3);
  // A mass 000+000 -> 111+111 transition moves much more current than a
  // single-LSB change.
  const double big = measure_peak_current(adder.netlist, adder_pair(0, 0, 7, 7, 3));
  const double small = measure_peak_current(adder.netlist, adder_pair(0, 0, 1, 0, 3));
  EXPECT_GT(big, 0.0);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(big, 1.5 * small);
}

TEST(DelayEval, CmosDelayIndependentOfWl) {
  const auto adder = make_ripple_adder(tech07(), 3);
  const DelayEvaluator eval(adder.netlist, adder_outputs(adder));
  const VectorPair vp = adder_pair(0, 0, 7, 1, 3);
  const double d0 = eval.delay_cmos(vp);
  EXPECT_GT(d0, 0.0);
  EXPECT_GT(eval.delay_at_wl(vp, 5.0), d0);
  EXPECT_GT(eval.delay_at_wl(vp, 5.0), eval.delay_at_wl(vp, 50.0));
}

TEST(DelayEval, DegradationShrinksWithWl) {
  const auto adder = make_ripple_adder(tech07(), 3);
  const DelayEvaluator eval(adder.netlist, adder_outputs(adder));
  const VectorPair vp = adder_pair(0, 0, 7, 1, 3);
  double prev = 1e9;
  for (double wl : {5.0, 10.0, 20.0, 80.0}) {
    const double deg = eval.degradation_pct(vp, wl);
    EXPECT_GE(deg, 0.0);
    EXPECT_LT(deg, prev) << "wl=" << wl;
    prev = deg;
  }
}

TEST(DelayEval, NonSwitchingVectorReportsNegative) {
  const auto adder = make_ripple_adder(tech07(), 3);
  const DelayEvaluator eval(adder.netlist, adder_outputs(adder));
  const VectorPair vp = adder_pair(3, 2, 3, 2, 3);  // no transition
  EXPECT_LT(eval.degradation_pct(vp, 10.0), 0.0);
}

TEST(DelayEval, UnknownOutputRejected) {
  const auto adder = make_ripple_adder(tech07(), 3);
  EXPECT_THROW(DelayEvaluator(adder.netlist, {"nope"}), std::invalid_argument);
  EXPECT_THROW(DelayEvaluator(adder.netlist, {}), std::invalid_argument);
}

TEST(Sizing, BisectionMeetsTarget) {
  const auto adder = make_ripple_adder(tech07(), 3);
  const DelayEvaluator eval(adder.netlist, adder_outputs(adder));
  const std::vector<VectorPair> vectors = {adder_pair(0, 0, 7, 1, 3),
                                           adder_pair(0, 0, 7, 7, 3),
                                           adder_pair(5, 2, 2, 5, 3)};
  const SizingResult res = size_for_degradation(eval, vectors, 5.0, 1.0, 2000.0, 0.5);
  EXPECT_LE(res.degradation_pct, 5.0);
  // Minimality: 20% smaller must violate the target for some vector.
  double worse = -1.0;
  for (const VectorPair& vp : vectors) {
    worse = std::max(worse, eval.degradation_pct(vp, res.wl * 0.8));
  }
  EXPECT_GT(worse, 5.0);
}

TEST(Sizing, TighterTargetNeedsBiggerDevice) {
  const auto adder = make_ripple_adder(tech07(), 3);
  const DelayEvaluator eval(adder.netlist, adder_outputs(adder));
  const std::vector<VectorPair> vectors = {adder_pair(0, 0, 7, 1, 3)};
  const double wl5 = size_for_degradation(eval, vectors, 5.0).wl;
  const double wl2 = size_for_degradation(eval, vectors, 2.0).wl;
  const double wl10 = size_for_degradation(eval, vectors, 10.0).wl;
  EXPECT_GT(wl2, wl5);
  EXPECT_GT(wl5, wl10);
}

TEST(Sizing, ImpossibleTargetThrows) {
  const auto adder = make_ripple_adder(tech07(), 3);
  const DelayEvaluator eval(adder.netlist, adder_outputs(adder));
  const std::vector<VectorPair> vectors = {adder_pair(0, 0, 7, 7, 3)};
  EXPECT_THROW(size_for_degradation(eval, vectors, 0.001, 1.0, 2.0), NumericalError);
}

TEST(VectorSpace, ExhaustiveEnumerationCount) {
  EXPECT_EQ(all_vector_pairs(2).size(), 16u);
  EXPECT_EQ(all_vector_pairs(3).size(), 64u);
  // The paper's 3-bit adder space: 2^6 * 2^6 = 4096.
  EXPECT_EQ(all_vector_pairs(6).size(), 4096u);
  EXPECT_THROW(all_vector_pairs(9), std::invalid_argument);
}

TEST(VectorSpace, SamplingIsDeterministic) {
  Rng r1(99), r2(99);
  const auto a = sampled_vector_pairs(16, 10, r1);
  const auto b = sampled_vector_pairs(16, 10, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].v0, b[i].v0);
    EXPECT_EQ(a[i].v1, b[i].v1);
  }
}

TEST(VectorSpace, RankingIsSortedAndFiltered) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const DelayEvaluator eval(adder.netlist, adder_outputs(adder));
  const auto ranked = rank_vectors(eval, all_vector_pairs(4), 8.0);
  ASSERT_GT(ranked.size(), 10u);
  EXPECT_LT(ranked.size(), 256u);  // identity transitions filtered out
  for (std::size_t i = 0; i + 1 < ranked.size(); ++i) {
    EXPECT_GE(ranked[i].degradation_pct, ranked[i + 1].degradation_pct);
  }
  for (const auto& vd : ranked) {
    EXPECT_GT(vd.delay_cmos, 0.0);
    EXPECT_GE(vd.delay_mtcmos, vd.delay_cmos * 0.999);
  }
}

TEST(VectorSpace, WorstVectorSearchBeatsAverage) {
  const auto adder = make_ripple_adder(tech07(), 3);
  const DelayEvaluator eval(adder.netlist, adder_outputs(adder));
  Rng rng(7);
  const VectorDelay worst = search_worst_vector(eval, 8.0, 40, rng);
  EXPECT_GT(worst.delay_mtcmos, 0.0);
  // Its MTCMOS delay must dominate a fresh random sample's mean.
  Rng rng2(123);
  double mean = 0.0;
  int counted = 0;
  for (const auto& vp : sampled_vector_pairs(6, 30, rng2)) {
    const double d = eval.delay_at_wl(vp, 8.0);
    if (d > 0.0) {
      mean += d;
      ++counted;
    }
  }
  ASSERT_GT(counted, 0);
  mean /= counted;
  EXPECT_GT(worst.delay_mtcmos, mean);
}

TEST(Screening, FallingWeightCountsFallingGatesOnly) {
  const auto adder = make_ripple_adder(tech07(), 2);
  // Identity transition: nothing falls.
  EXPECT_DOUBLE_EQ(falling_discharge_weight(adder.netlist, adder_pair(1, 2, 1, 2, 2)), 0.0);
  // A mass 3+3 -> 0+0 transition drops many outputs at once.
  const double heavy = falling_discharge_weight(adder.netlist, adder_pair(3, 3, 0, 0, 2));
  const double light = falling_discharge_weight(adder.netlist, adder_pair(1, 0, 0, 0, 2));
  EXPECT_GT(heavy, light);
  EXPECT_GT(light, 0.0);
}

TEST(Screening, KeepsHighestWeightCandidates) {
  const auto adder = make_ripple_adder(tech07(), 2);
  auto pairs = all_vector_pairs(4);
  const auto kept = screen_vectors(adder.netlist, pairs, 10);
  ASSERT_EQ(kept.size(), 10u);
  // Every kept pair's weight must be >= the weight of every dropped pair
  // (sampled check against a few random drops).
  double min_kept = 1e30;
  for (const auto& vp : kept) {
    min_kept = std::min(min_kept, falling_discharge_weight(adder.netlist, vp));
  }
  const double identity = falling_discharge_weight(adder.netlist, adder_pair(2, 1, 2, 1, 2));
  EXPECT_GE(min_kept, identity);
}

TEST(Screening, CorrelatesWithSimulatedDegradation) {
  // The top screened decile must contain the simulator's worst vector (or
  // something within a few percent of it).
  const auto adder = make_ripple_adder(tech07(), 2);
  const DelayEvaluator eval(adder.netlist, adder_outputs(adder));
  auto pairs = all_vector_pairs(4);
  const auto kept = screen_vectors(adder.netlist, pairs, pairs.size() / 10);
  double best_kept = 0.0;
  for (const auto& vp : kept) {
    best_kept = std::max(best_kept, eval.delay_at_wl(vp, 8.0));
  }
  double best_all = 0.0;
  for (const auto& vp : pairs) {
    best_all = std::max(best_all, eval.delay_at_wl(vp, 8.0));
  }
  EXPECT_GT(best_kept, 0.93 * best_all);
}

TEST(Screening, Validation) {
  const auto adder = make_ripple_adder(tech07(), 2);
  EXPECT_THROW(screen_vectors(adder.netlist, all_vector_pairs(4), 0), std::invalid_argument);
  EXPECT_THROW(falling_discharge_weight(adder.netlist, {{true}, {false}}),
               std::invalid_argument);
}

TEST(VectorSpace, SearchAgreesWithExhaustiveOnSmallAdder) {
  // On the 2-bit adder (256 pairs) the randomized search must land within
  // a few percent of the exhaustive worst MTCMOS delay.
  const auto adder = make_ripple_adder(tech07(), 2);
  const DelayEvaluator eval(adder.netlist, adder_outputs(adder));
  double exhaustive_worst = 0.0;
  for (const auto& vp : all_vector_pairs(4)) {
    exhaustive_worst = std::max(exhaustive_worst, eval.delay_at_wl(vp, 8.0));
  }
  Rng rng(5);
  const VectorDelay found = search_worst_vector(eval, 8.0, 60, rng);
  EXPECT_GT(found.delay_mtcmos, 0.97 * exhaustive_worst);
}

}  // namespace
}  // namespace mtcmos::sizing
