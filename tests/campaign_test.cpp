// Corner-crossed characterization campaigns: spec parsing and
// validation, deterministic corner transforms, chunk accounting, and
// the headline invariant -- fresh, killed-and-resumed, and sharded
// campaigns of the same spec emit byte-identical tables.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "models/technology.hpp"
#include "sizing/campaign.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"

namespace mtcmos {
namespace {

using sizing::build_campaign_circuit;
using sizing::CampaignCorner;
using sizing::CampaignDriver;
using sizing::CampaignSpec;
using sizing::campaign_nominal_tech;
using sizing::CampaignStats;
using sizing::corner_technology;

const char* kTinySpec = R"({
  "circuit": "builtin:adder1",
  "target_pct": 10.0,
  "wl_grid": [10, 80],
  "corners": [
    { "name": "nominal" },
    { "name": "slow", "vdd_scale": 0.95, "vt_high_shift": 0.05, "temp": 358.15 }
  ],
  "chunk": 4
})";

class CampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("campaign_test." +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "." +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string subdir(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

std::string table_of(CampaignDriver& driver) {
  std::ostringstream os;
  driver.write_table(os);
  return os.str();
}

// --- Spec parsing -----------------------------------------------------

TEST(CampaignSpecParse, ParsesTheFullShape) {
  const CampaignSpec spec = CampaignSpec::parse(kTinySpec);
  EXPECT_EQ(spec.circuit, "builtin:adder1");
  EXPECT_EQ(spec.backend, "vbs");
  EXPECT_EQ(spec.target_pct, 10.0);
  ASSERT_EQ(spec.wl_grid.size(), 2u);
  ASSERT_EQ(spec.corners.size(), 2u);
  EXPECT_EQ(spec.corners[1].name, "slow");
  EXPECT_EQ(spec.corners[1].vdd_scale, 0.95);
  EXPECT_EQ(spec.corners[1].temp, 358.15);
  EXPECT_EQ(spec.vector_mode, CampaignSpec::VectorMode::kExhaustive);
  EXPECT_EQ(spec.chunk, 4u);
}

TEST(CampaignSpecParse, DefaultsCornersToNominal) {
  const auto spec = CampaignSpec::parse(R"({"circuit": "x.mtn", "wl_grid": [10]})");
  ASSERT_EQ(spec.corners.size(), 1u);
  EXPECT_EQ(spec.corners[0].name, "nominal");
  EXPECT_EQ(spec.corners[0].vdd_scale, 1.0);
}

TEST(CampaignSpecParse, RejectsUnknownKeysAtEveryLevel) {
  EXPECT_THROW(CampaignSpec::parse(R"({"circuit": "x", "wl_grid": [1], "typo": 1})"),
               std::invalid_argument);
  EXPECT_THROW(CampaignSpec::parse(
                   R"({"circuit": "x", "wl_grid": [1], "corners": [{"name": "a", "vt": 1}]})"),
               std::invalid_argument);
  EXPECT_THROW(CampaignSpec::parse(
                   R"({"circuit": "x", "wl_grid": [1], "vectors": {"mode": "exhaustive", "n": 2}})"),
               std::invalid_argument);
}

TEST(CampaignSpecParse, RejectsSemanticErrors) {
  // Missing circuit.
  EXPECT_THROW(CampaignSpec::parse(R"({"wl_grid": [1]})"), std::runtime_error);
  // Unknown backend.
  EXPECT_THROW(CampaignSpec::parse(R"({"circuit": "x", "wl_grid": [1], "backend": "hspice"})"),
               std::invalid_argument);
  // Non-ascending / non-positive W/L grid.
  EXPECT_THROW(CampaignSpec::parse(R"({"circuit": "x", "wl_grid": [10, 10]})"),
               std::invalid_argument);
  EXPECT_THROW(CampaignSpec::parse(R"({"circuit": "x", "wl_grid": [-1, 10]})"),
               std::invalid_argument);
  EXPECT_THROW(CampaignSpec::parse(R"({"circuit": "x", "wl_grid": []})"), std::invalid_argument);
  // Duplicate corner names.
  EXPECT_THROW(CampaignSpec::parse(
                   R"({"circuit": "x", "wl_grid": [1],
                       "corners": [{"name": "a"}, {"name": "a"}]})"),
               std::invalid_argument);
  // Sampled mode without a count.
  EXPECT_THROW(
      CampaignSpec::parse(R"({"circuit": "x", "wl_grid": [1], "vectors": {"mode": "sampled"}})"),
      std::invalid_argument);
  // Fractional chunk.
  EXPECT_THROW(CampaignSpec::parse(R"({"circuit": "x", "wl_grid": [1], "chunk": 2.5})"),
               std::invalid_argument);
}

TEST(CampaignSpecParse, MalformedJsonReportsPosition) {
  try {
    CampaignSpec::parse("{\n  \"circuit\": oops\n}");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(CampaignSpecParse, RejectsDuplicateJsonKeys) {
  EXPECT_THROW(CampaignSpec::parse(R"({"circuit": "x", "circuit": "y", "wl_grid": [1]})"),
               std::runtime_error);
}

TEST(CampaignSpecParse, CanonicalCapturesEveryField) {
  const auto a = CampaignSpec::parse(kTinySpec);
  auto b = a;
  EXPECT_EQ(a.canonical(), b.canonical());
  b.corners[1].temp += 1.0;
  EXPECT_NE(a.canonical(), b.canonical());
  auto c = a;
  c.chunk = 8;
  EXPECT_NE(a.canonical(), c.canonical());
}

// --- Corner transforms ------------------------------------------------

TEST(CornerTechnology, AppliesShiftsScalesAndTemperature) {
  const Technology nominal = tech07();
  CampaignCorner corner;
  corner.name = "slow";
  corner.vdd_scale = 0.9;
  corner.vt_low_shift = 0.03;
  corner.vt_high_shift = 0.06;
  corner.kp_scale = 0.95;
  corner.temp = 398.15;
  const Technology t = corner_technology(nominal, corner);
  EXPECT_DOUBLE_EQ(t.vdd, nominal.vdd * 0.9);
  EXPECT_DOUBLE_EQ(t.nmos_low.vt0, nominal.nmos_low.vt0 + 0.03);
  EXPECT_DOUBLE_EQ(t.nmos_high.vt0, nominal.nmos_high.vt0 + 0.06);
  EXPECT_DOUBLE_EQ(t.nmos_low.kp, nominal.nmos_low.kp * 0.95);
  EXPECT_DOUBLE_EQ(t.pmos_high.kp, nominal.pmos_high.kp * 0.95);
  EXPECT_DOUBLE_EQ(t.nmos_low.temp, 398.15);
  EXPECT_DOUBLE_EQ(t.pmos_high.temp, 398.15);
}

TEST(CornerTechnology, NominalCornerIsIdentity) {
  const Technology nominal = tech07();
  const Technology t = corner_technology(nominal, {"nominal"});
  EXPECT_DOUBLE_EQ(t.vdd, nominal.vdd);
  EXPECT_DOUBLE_EQ(t.nmos_low.vt0, nominal.nmos_low.vt0);
  EXPECT_DOUBLE_EQ(t.nmos_low.temp, nominal.nmos_low.temp);
}

TEST(CornerTechnology, ClampsMirrorTheVariationSampler) {
  const Technology nominal = tech07();
  CampaignCorner corner;
  corner.name = "deep";
  corner.vt_low_shift = -10.0;  // clamps at 0.01
  corner.kp_scale = 0.6;        // multiplier clamps at... 0.6 is fine; 0.2 clamps to 0.5
  Technology t = corner_technology(nominal, corner);
  EXPECT_DOUBLE_EQ(t.nmos_low.vt0, 0.01);
  corner.vt_low_shift = 0.0;
  corner.kp_scale = 0.2;
  t = corner_technology(nominal, corner);
  EXPECT_DOUBLE_EQ(t.nmos_low.kp, nominal.nmos_low.kp * 0.5);
}

TEST(CornerTechnology, GuardsVddHeadroomAndPreconditions) {
  const Technology nominal = tech07();
  CampaignCorner corner;
  corner.name = "collapse";
  corner.vdd_scale = 0.5;      // 0.6 V Vdd vs 0.75 V Vt,high
  EXPECT_THROW(corner_technology(nominal, corner), std::invalid_argument);
  corner.vdd_scale = -1.0;
  EXPECT_THROW(corner_technology(nominal, corner), std::invalid_argument);
  corner.vdd_scale = 1.0;
  corner.temp = -5.0;
  EXPECT_THROW(corner_technology(nominal, corner), std::invalid_argument);
}

// --- Circuit instantiation --------------------------------------------

TEST(CampaignCircuit, BuiltinsPickTheirPaperProcess) {
  EXPECT_DOUBLE_EQ(campaign_nominal_tech("builtin:adder2").vdd, tech07().vdd);
  EXPECT_DOUBLE_EQ(campaign_nominal_tech("builtin:mult2").vdd, tech03().vdd);
  EXPECT_DOUBLE_EQ(campaign_nominal_tech("builtin:wallace2").vdd, tech03().vdd);
  EXPECT_THROW(campaign_nominal_tech("builtin:rom4"), std::invalid_argument);
}

TEST(CampaignCircuit, MultiplierBuiltinsNameTheirProductBits) {
  // Regression: the multiplier branches once read output names from a
  // netlist that had already been moved into the return value.
  for (const char* name : {"builtin:mult2", "builtin:mult3", "builtin:wallace2"}) {
    const auto c = build_campaign_circuit(name, nullptr);
    ASSERT_FALSE(c.outputs.empty()) << name;
    for (const auto& out : c.outputs) {
      EXPECT_TRUE(c.nl.find_net(out).has_value()) << name << " output " << out;
    }
  }
}

TEST(CampaignCircuit, CornerRebindPreservesStructure) {
  const auto nominal = build_campaign_circuit("builtin:adder2", nullptr);
  CampaignCorner corner;
  corner.name = "slow";
  corner.vdd_scale = 0.95;
  const Technology t = corner_technology(tech07(), corner);
  const auto shifted = build_campaign_circuit("builtin:adder2", &t);
  EXPECT_DOUBLE_EQ(shifted.nl.tech().vdd, t.vdd);
  ASSERT_EQ(shifted.nl.inputs().size(), nominal.nl.inputs().size());
  for (std::size_t i = 0; i < nominal.nl.inputs().size(); ++i) {
    EXPECT_EQ(shifted.nl.net_name(shifted.nl.inputs()[i]),
              nominal.nl.net_name(nominal.nl.inputs()[i]));
  }
  EXPECT_EQ(shifted.outputs, nominal.outputs);
  EXPECT_EQ(shifted.nl.gate_count(), nominal.nl.gate_count());
}

TEST_F(CampaignTest, MtnFileRebindsPreservingInputOrderAndLoads) {
  const std::string mtn = (dir_ / "blk.mtn").string();
  {
    std::ofstream os(mtn);
    os << "tech paper-0.7um\n"
          "input b a\n"  // deliberately not alphabetical: order must survive
          "nand2 g1 a b\n"
          "inv g2 g1.out\n"
          "load g2.out 50f\n"
          "output g2.out\n";
  }
  const auto nominal = build_campaign_circuit(mtn, nullptr);
  CampaignCorner corner;
  corner.name = "slow";
  corner.vdd_scale = 0.9;
  const Technology t = corner_technology(nominal.nl.tech(), corner);
  const auto shifted = build_campaign_circuit(mtn, &t);

  EXPECT_DOUBLE_EQ(shifted.nl.tech().vdd, nominal.nl.tech().vdd * 0.9);
  ASSERT_EQ(shifted.nl.inputs().size(), 2u);
  EXPECT_EQ(shifted.nl.net_name(shifted.nl.inputs()[0]), "b");
  EXPECT_EQ(shifted.nl.net_name(shifted.nl.inputs()[1]), "a");
  EXPECT_EQ(shifted.outputs, nominal.outputs);
  const auto loaded = shifted.nl.find_net("g2.out");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(shifted.nl.extra_load(*loaded), 50e-15);
  // Net ids line up one-to-one, so checkpoint keys and vector bit
  // semantics are shared across corners.
  ASSERT_EQ(shifted.nl.net_count(), nominal.nl.net_count());
  for (netlist::NetId id = 0; id < nominal.nl.net_count(); ++id) {
    EXPECT_EQ(shifted.nl.net_name(id), nominal.nl.net_name(id));
  }
}

// --- Driver orchestration ---------------------------------------------

TEST_F(CampaignTest, FreshRunCompletesAndAccountsChunks) {
  const auto spec = CampaignSpec::parse(kTinySpec);
  CampaignDriver driver(spec, subdir("fresh"), false);
  EXPECT_EQ(driver.n_vectors(), 16u);  // adder1: 2 inputs, 16 transitions
  EXPECT_EQ(driver.n_chunks(), 16u);   // 4 chunks/sweep x 2 W/L x 2 corners
  EXPECT_THROW(driver.write_table(std::cout), std::runtime_error);  // not complete yet

  const CampaignStats stats = driver.run();
  EXPECT_TRUE(stats.complete);
  EXPECT_FALSE(stats.cancelled);
  EXPECT_EQ(stats.chunks_replayed, 0u);
  EXPECT_EQ(stats.chunks_run, 16u);
  EXPECT_EQ(stats.chunks_poisoned, 0u);
  EXPECT_EQ(stats.rows_emitted, 16u * 4u);  // every (corner, wl) emits all 16
  EXPECT_TRUE(driver.complete());
}

TEST_F(CampaignTest, FreshDriverOnAUsedDirectoryThrows) {
  const auto spec = CampaignSpec::parse(kTinySpec);
  {
    CampaignDriver driver(spec, subdir("used"), false);
    driver.run();
  }
  EXPECT_THROW(CampaignDriver(spec, subdir("used"), false), std::invalid_argument);
}

TEST_F(CampaignTest, ResumeWithAnEditedSpecIsRejected) {
  const auto spec = CampaignSpec::parse(kTinySpec);
  {
    CampaignDriver driver(spec, subdir("guard"), false);
    driver.run();
  }
  auto edited = spec;
  edited.target_pct = 7.5;
  EXPECT_THROW(CampaignDriver(edited, subdir("guard"), true), NumericalError);
}

TEST_F(CampaignTest, ResumedAndShardedRunsEmitByteIdenticalTables) {
  const auto spec = CampaignSpec::parse(kTinySpec);

  CampaignDriver fresh(spec, subdir("fresh"), false);
  fresh.run();
  const std::string reference = table_of(fresh);
  EXPECT_NE(reference.find("\"format\": \"mtcmos-campaign-table-1\""), std::string::npos);
  EXPECT_NE(reference.find("\"name\": \"slow\""), std::string::npos);

  // Interrupted run: a parallel thread raises the cancel token almost
  // immediately, so some prefix of the chunks completes.  However many
  // that was, the resumed run must converge to the same table bytes.
  {
    util::CancelToken token;
    CampaignDriver interrupted(spec, subdir("resumed"), false);
    std::thread canceller([&token] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      token.request();
    });
    const CampaignStats stats = interrupted.run(1, nullptr, &token);
    canceller.join();
    EXPECT_EQ(stats.chunks_replayed + stats.chunks_run, interrupted.chunks_done());
  }
  CampaignDriver resumed(spec, subdir("resumed"), true);
  const CampaignStats rstats = resumed.run();
  EXPECT_TRUE(rstats.complete);
  EXPECT_EQ(table_of(resumed), reference);

  // Sharded run: two supervised worker processes, shard journals and
  // shard columnar stores merged back.
  CampaignDriver sharded(spec, subdir("sharded"), false);
  const CampaignStats sstats = sharded.run(2);
  EXPECT_TRUE(sstats.complete);
  EXPECT_EQ(sstats.chunks_poisoned, 0u);
  EXPECT_GE(sstats.supervisor.workers_spawned, 2);
  EXPECT_EQ(table_of(sharded), reference);

  // And a resumed handle over the finished sharded directory replays
  // everything without running a single chunk.
  CampaignDriver replayed(spec, subdir("sharded"), true);
  const CampaignStats pstats = replayed.run();
  EXPECT_EQ(pstats.chunks_run, 0u);
  EXPECT_EQ(pstats.chunks_replayed, replayed.n_chunks());
  EXPECT_EQ(table_of(replayed), reference);
}

TEST_F(CampaignTest, SampledVectorModeIsDeterministic) {
  const auto spec = CampaignSpec::parse(R"({
    "circuit": "builtin:adder2",
    "wl_grid": [20],
    "vectors": { "mode": "sampled", "count": 24, "seed": 9 },
    "chunk": 8
  })");
  CampaignDriver a(spec, subdir("a"), false);
  a.run();
  CampaignDriver b(spec, subdir("b"), false);
  b.run();
  EXPECT_EQ(a.n_vectors(), 24u);
  EXPECT_EQ(table_of(a), table_of(b));
}

TEST_F(CampaignTest, TableContainsSizingAndCornerPhysics) {
  const auto spec = CampaignSpec::parse(kTinySpec);
  CampaignDriver driver(spec, subdir("t"), false);
  driver.run();
  const std::string table = table_of(driver);
  // Each corner reports its shifted physics and a W/L curve with a
  // sizing verdict against target_pct.
  EXPECT_NE(table.find("\"vt_high\": 0.8"), std::string::npos);   // 0.75 + 0.05
  EXPECT_NE(table.find("\"temp\": 358.15"), std::string::npos);
  EXPECT_NE(table.find("\"wl_curve\""), std::string::npos);
  EXPECT_NE(table.find("\"sizing\""), std::string::npos);
  EXPECT_NE(table.find("\"worst_vector\""), std::string::npos);
  EXPECT_NE(table.find("\"histogram_pct\""), std::string::npos);
}

}  // namespace
}  // namespace mtcmos
