// Tests for the SoA batch kernel (core/vbs_batch.hpp): bit-identity with
// the scalar VbsSimulator across every VbsOptions extension, multi-domain
// partitions and batch sizes, per-lane failure isolation, coded option
// validation, and (through EvalSession) parallel sweeps and checkpoint
// kill-and-resume with the batch path enabled.

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "circuits/generators.hpp"
#include "core/vbs.hpp"
#include "core/vbs_batch.hpp"
#include "models/sleep_transistor.hpp"
#include "models/technology.hpp"
#include "sizing/checkpoint.hpp"
#include "sizing/session.hpp"
#include "sizing/sizing.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mtcmos::core {
namespace {

using circuits::make_ripple_adder;
using sizing::VectorPair;

struct AdderFixture {
  circuits::RippleAdder adder;
  std::vector<std::string> outs;
  std::vector<VectorPair> pairs;

  explicit AdderFixture(int nbits = 3) : adder(make_ripple_adder(tech07(), nbits)) {
    for (const auto s : adder.sum) outs.push_back(adder.netlist.net_name(s));
    outs.push_back(adder.netlist.net_name(adder.cout));
    pairs = sizing::all_vector_pairs(2 * nbits);
  }
};

std::vector<VbsBatchItem> make_items(const std::vector<VectorPair>& pairs) {
  std::vector<VbsBatchItem> items;
  items.reserve(pairs.size());
  for (const VectorPair& p : pairs) items.push_back({&p.v0, &p.v1});
  return items;
}

/// Runs the batch kernel in chunks of `batch` and requires every lane to
/// equal the scalar critical_delay bit-for-bit.
void expect_bit_identical(const VbsSimulator& sim, const std::vector<VectorPair>& pairs,
                          const std::vector<std::string>& outs, std::size_t batch,
                          BatchKernel kernel = BatchKernel::kCohort) {
  const VbsBatchSimulator batch_sim(sim, kernel);
  const std::vector<VbsBatchItem> items = make_items(pairs);
  std::vector<VbsLaneResult> results(items.size());
  VbsBatchWorkspace bws;
  for (std::size_t off = 0; off < items.size(); off += batch) {
    const std::size_t n = std::min(batch, items.size() - off);
    batch_sim.critical_delays(items.data() + off, n, outs, bws, results.data() + off);
  }
  VbsWorkspace ws;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const double scalar = sim.critical_delay(pairs[i].v0, pairs[i].v1, outs, ws);
    ASSERT_TRUE(results[i].ok) << "lane " << i << ": " << results[i].failure.message();
    // Bit-identity, not near-equality: the batch kernel replays the
    // scalar floating-point sequence exactly.
    EXPECT_EQ(results[i].delay, scalar) << "lane " << i;
  }
}

TEST(VbsBatch, BitIdenticalAcrossBatchSizes) {
  const AdderFixture fx;
  VbsOptions opt;
  opt.sleep_resistance = SleepTransistor(tech07(), 8.0).reff();
  const VbsSimulator sim(fx.adder.netlist, opt);
  // Subsample for the small sizes; the full sweep runs once at 64.
  std::vector<VectorPair> sample;
  for (std::size_t i = 0; i < fx.pairs.size(); i += 17) sample.push_back(fx.pairs[i]);
  for (const std::size_t batch : {std::size_t{1}, std::size_t{7}}) {
    expect_bit_identical(sim, sample, fx.outs, batch);
  }
  expect_bit_identical(sim, fx.pairs, fx.outs, 64);
  expect_bit_identical(sim, fx.pairs, fx.outs, fx.pairs.size());  // full sweep, one batch
}

TEST(VbsBatch, BitIdenticalForEveryKernel) {
  // Every BatchKernel variant replays the scalar FP sequence exactly --
  // the lockstep reference, the branchless SIMD passes, and the cohort
  // scheduler's compaction/skipping must not change a single bit.
  const AdderFixture fx;
  VbsOptions opt;
  opt.sleep_resistance = SleepTransistor(tech07(), 8.0).reff();
  const VbsSimulator sim(fx.adder.netlist, opt);
  std::vector<VectorPair> sample;
  for (std::size_t i = 0; i < fx.pairs.size(); i += 17) sample.push_back(fx.pairs[i]);
  for (const BatchKernel kernel :
       {BatchKernel::kLockstep, BatchKernel::kSimd, BatchKernel::kCohort}) {
    SCOPED_TRACE(static_cast<int>(kernel));
    expect_bit_identical(sim, sample, fx.outs, 32, kernel);
  }
  // The extension everything-on config through each variant too: the
  // general-alpha solve and reverse-conduction paths diverge most.
  VbsOptions all;
  all.sleep_resistance = SleepTransistor(tech07(), 6.0).reff();
  all.body_effect = true;
  all.virtual_ground_cap = 5e-12;
  all.reverse_conduction = true;
  all.alpha = 1.5;
  all.input_slope_factor = 0.2;
  const VbsSimulator sim_all(fx.adder.netlist, all);
  std::vector<VectorPair> thin;
  for (std::size_t i = 0; i < fx.pairs.size(); i += 41) thin.push_back(fx.pairs[i]);
  for (const BatchKernel kernel :
       {BatchKernel::kLockstep, BatchKernel::kSimd, BatchKernel::kCohort}) {
    SCOPED_TRACE(static_cast<int>(kernel));
    expect_bit_identical(sim_all, thin, fx.outs, 32, kernel);
  }
}

TEST(VbsBatch, RandomizedMixedSettleVectorsAreBitIdentical) {
  // Randomized vector sets stress the cohort scheduler where the ordered
  // all-pairs sweep does not: lanes settle at wildly different round
  // counts (compaction retires them out of order), v0 groups repeat
  // non-contiguously (Hamming-incremental settling walks arbitrary
  // cones), and v0 == v1 lanes finish without a single breakpoint.
  const AdderFixture fx;
  VbsOptions opt;
  opt.sleep_resistance = SleepTransistor(tech07(), 8.0).reff();
  const VbsSimulator sim(fx.adder.netlist, opt);
  mtcmos::Rng rng(20260807);
  const auto random_bits = [&](std::size_t n) {
    std::vector<bool> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = rng.coin();
    return v;
  };
  std::vector<VectorPair> pairs;
  for (int i = 0; i < 160; ++i) {
    VectorPair p;
    p.v0 = random_bits(6);
    p.v1 = (i % 9 == 0) ? p.v0 : random_bits(6);  // some no-op transitions
    pairs.push_back(std::move(p));
  }
  for (const BatchKernel kernel :
       {BatchKernel::kLockstep, BatchKernel::kSimd, BatchKernel::kCohort}) {
    SCOPED_TRACE(static_cast<int>(kernel));
    // A chunk size that does not divide the set exercises the tail chunk.
    expect_bit_identical(sim, pairs, fx.outs, 48, kernel);
  }
}

TEST(VbsBatch, BitIdenticalForEveryExtension) {
  const AdderFixture fx;
  std::vector<VectorPair> sample;
  for (std::size_t i = 0; i < fx.pairs.size(); i += 13) sample.push_back(fx.pairs[i]);

  const double r = SleepTransistor(tech07(), 6.0).reff();
  std::vector<std::pair<std::string, VbsOptions>> variants;
  {
    VbsOptions o;
    o.sleep_resistance = r;
    o.body_effect = true;
    variants.emplace_back("body_effect", o);
  }
  {
    VbsOptions o;
    o.sleep_resistance = r;
    o.virtual_ground_cap = 20e-12;
    variants.emplace_back("virtual_ground_cap", o);
  }
  {
    VbsOptions o;
    o.sleep_resistance = r;
    o.reverse_conduction = true;
    variants.emplace_back("reverse_conduction", o);
  }
  {
    VbsOptions o;
    o.sleep_resistance = r;
    o.alpha = 1.3;
    variants.emplace_back("alpha_1.3", o);
  }
  {
    VbsOptions o;
    o.sleep_resistance = r;
    o.input_slope_factor = 0.3;
    variants.emplace_back("input_slope", o);
  }
  {
    VbsOptions o;  // everything on at once
    o.sleep_resistance = r;
    o.body_effect = true;
    o.virtual_ground_cap = 5e-12;
    o.reverse_conduction = true;
    o.alpha = 1.5;
    o.input_slope_factor = 0.2;
    variants.emplace_back("all_extensions", o);
  }
  for (const auto& [name, opt] : variants) {
    SCOPED_TRACE(name);
    const VbsSimulator sim(fx.adder.netlist, opt);
    expect_bit_identical(sim, sample, fx.outs, 32);
  }
}

TEST(VbsBatch, BitIdenticalOnMultiDomainNetlists) {
  const AdderFixture fx;
  std::vector<VectorPair> sample;
  for (std::size_t i = 0; i < fx.pairs.size(); i += 13) sample.push_back(fx.pairs[i]);
  // Alternate gates across two sleep devices with distinct resistances.
  std::vector<int> gate_domain(static_cast<std::size_t>(fx.adder.netlist.gate_count()));
  for (std::size_t g = 0; g < gate_domain.size(); ++g) gate_domain[g] = static_cast<int>(g % 2);
  VbsOptions opt;
  opt.reverse_conduction = true;  // exercise per-domain target_low too
  const VbsSimulator sim(fx.adder.netlist, opt, gate_domain,
                         {SleepTransistor(tech07(), 5.0).reff(),
                          SleepTransistor(tech07(), 11.0).reff()});
  expect_bit_identical(sim, sample, fx.outs, 32);
}

TEST(VbsBatch, OutNameHandlingMatchesScalar) {
  const AdderFixture fx;
  VbsOptions opt;
  opt.sleep_resistance = 1500.0;
  const VbsSimulator sim(fx.adder.netlist, opt);
  // Inputs, an unknown name, and a duplicate all behave exactly as the
  // scalar Trace-based path: inputs contribute their ramp crossing,
  // unknown names are skipped.
  std::vector<std::string> outs = fx.outs;
  outs.push_back(fx.adder.netlist.net_name(fx.adder.netlist.inputs()[0]));
  outs.push_back("no_such_net");
  outs.push_back(fx.outs.front());
  std::vector<VectorPair> sample;
  for (std::size_t i = 0; i < fx.pairs.size(); i += 97) sample.push_back(fx.pairs[i]);
  expect_bit_identical(sim, sample, fx.outs, 16);
  expect_bit_identical(sim, sample, outs, 16);
}

TEST(VbsBatch, PerLaneFailuresMatchScalarThrows) {
  const AdderFixture fx;
  VbsOptions opt;
  opt.sleep_resistance = 2000.0;
  opt.max_breakpoints = 12;  // enough for short transitions, not for long ones
  const VbsSimulator sim(fx.adder.netlist, opt);
  const VbsBatchSimulator batch_sim(sim);
  std::vector<VectorPair> sample;
  for (std::size_t i = 0; i < fx.pairs.size(); i += 11) sample.push_back(fx.pairs[i]);
  const auto items = make_items(sample);
  VbsBatchWorkspace bws;
  std::vector<VbsLaneResult> results(items.size());
  batch_sim.critical_delays(items.data(), items.size(), fx.outs, bws, results.data());

  VbsWorkspace ws;
  std::size_t failures = 0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    double scalar = 0.0;
    bool threw = false;
    FailureInfo info;
    try {
      scalar = sim.critical_delay(sample[i].v0, sample[i].v1, fx.outs, ws);
    } catch (const NumericalError& e) {
      threw = true;
      info = e.info();
    }
    if (threw) {
      ++failures;
      ASSERT_FALSE(results[i].ok) << "lane " << i << " should fail like the scalar path";
      EXPECT_EQ(static_cast<int>(results[i].failure.code), static_cast<int>(info.code));
      EXPECT_EQ(results[i].failure.context, info.context);
    } else {
      ASSERT_TRUE(results[i].ok) << "lane " << i << ": " << results[i].failure.message();
      EXPECT_EQ(results[i].delay, scalar) << "lane " << i;
    }
  }
  // The budget must actually bite somewhere, and not everywhere, or this
  // test proves nothing about isolation.
  EXPECT_GT(failures, 0u);
  EXPECT_LT(failures, sample.size());
}

TEST(VbsBatch, OptionValidationIsCoded) {
  const AdderFixture fx;
  const auto expect_invalid = [&](VbsOptions opt) {
    try {
      const VbsSimulator sim(fx.adder.netlist, opt);
      FAIL() << "expected NumericalError(kInvalidArgument)";
    } catch (const NumericalError& e) {
      EXPECT_EQ(static_cast<int>(e.info().code),
                static_cast<int>(FailureCode::kInvalidArgument));
      EXPECT_EQ(e.info().site, "core::VbsSimulator");
    }
  };
  VbsOptions opt;
  opt.sleep_resistance = -1.0;
  expect_invalid(opt);
  opt = VbsOptions{};
  opt.virtual_ground_cap = -1e-12;
  expect_invalid(opt);
  opt = VbsOptions{};
  opt.input_ramp = -1e-12;
  expect_invalid(opt);
  opt = VbsOptions{};
  opt.alpha = 0.0;
  expect_invalid(opt);
  opt = VbsOptions{};
  opt.alpha = 2.5;
  expect_invalid(opt);
  opt = VbsOptions{};
  opt.input_slope_factor = -0.1;
  expect_invalid(opt);
  opt = VbsOptions{};
  opt.deadline_s = -1.0;
  expect_invalid(opt);
}

// --- EvalSession integration: batched sweeps vs scalar sweeps ---

using mtcmos::Rng;
using mtcmos::SweepReport;
using sizing::EvalSession;
using sizing::VbsBackend;
using sizing::VectorDelay;

bool same_pair(const VectorPair& a, const VectorPair& b) {
  return a.v0 == b.v0 && a.v1 == b.v1;
}

void expect_same_ranking(const std::vector<VectorDelay>& a, const std::vector<VectorDelay>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(same_pair(a[i].pair, b[i].pair)) << i;
    EXPECT_EQ(a[i].delay_cmos, b[i].delay_cmos) << i;
    EXPECT_EQ(a[i].delay_mtcmos, b[i].delay_mtcmos) << i;
    EXPECT_EQ(a[i].degradation_pct, b[i].degradation_pct) << i;
  }
}

TEST(VbsBatchSession, MultiThreadedSweepsAreBitIdenticalToScalar) {
  // A 4-thread pool drives the batch precompute and the per-item pass;
  // every entry point must reproduce the scalar (batch = 1) results
  // bit-for-bit, for a chunk size that does not divide the sweep too.
  const AdderFixture fx(2);
  const VbsBackend backend(fx.adder.netlist, fx.outs);
  util::ThreadPool pool(4);

  EvalSession scalar;
  scalar.pool = &pool;
  scalar.batch = 1;

  for (const std::size_t batch : {std::size_t{0}, std::size_t{7}}) {
    EvalSession batched;
    batched.pool = &pool;
    batched.batch = batch;
    SCOPED_TRACE(batch);

    SweepReport scalar_report, batched_report;
    scalar.report = &scalar_report;
    batched.report = &batched_report;
    expect_same_ranking(sizing::rank_vectors(backend, fx.pairs, 10.0, scalar),
                        sizing::rank_vectors(backend, fx.pairs, 10.0, batched));
    EXPECT_EQ(scalar_report.succeeded, batched_report.succeeded);
    EXPECT_EQ(scalar_report.failed, batched_report.failed);
    scalar.report = nullptr;
    batched.report = nullptr;

    const auto s_sz = sizing::size_for_degradation(backend, fx.pairs, 5.0, {}, scalar);
    const auto b_sz = sizing::size_for_degradation(backend, fx.pairs, 5.0, {}, batched);
    EXPECT_EQ(s_sz.wl, b_sz.wl);
    EXPECT_EQ(s_sz.degradation_pct, b_sz.degradation_pct);
    EXPECT_TRUE(same_pair(s_sz.binding_vector, b_sz.binding_vector));

    Rng rng_s(42), rng_b(42);
    const VectorDelay s_worst = sizing::search_worst_vector(backend, 8.0, 40, rng_s, scalar);
    const VectorDelay b_worst = sizing::search_worst_vector(backend, 8.0, 40, rng_b, batched);
    EXPECT_TRUE(same_pair(s_worst.pair, b_worst.pair));
    EXPECT_EQ(s_worst.delay_mtcmos, b_worst.delay_mtcmos);
    EXPECT_EQ(s_worst.degradation_pct, b_worst.degradation_pct);
  }
}

TEST(VbsBatchSession, EveryThreadCountIsBitIdenticalToScalar) {
  // threads x batch scaling: the chunked batch precompute on a pool of
  // 1..8 workers must reproduce the single-threaded scalar sweep
  // bit-for-bit -- chunks land in index-addressed slots, so scheduling
  // order must never leak into the results.
  const AdderFixture fx(2);
  const VbsBackend backend(fx.adder.netlist, fx.outs);

  EvalSession scalar;
  scalar.batch = 1;
  const auto reference = sizing::rank_vectors(backend, fx.pairs, 10.0, scalar);

  for (int threads = 1; threads <= 8; ++threads) {
    SCOPED_TRACE(threads);
    util::ThreadPool pool(threads);
    EvalSession batched;
    batched.pool = &pool;
    batched.batch = 16;  // several chunks per worker at every pool size
    expect_same_ranking(sizing::rank_vectors(backend, fx.pairs, 10.0, batched), reference);
  }
}

TEST(VbsBatchSession, KilledBatchedRankResumesBitIdentically) {
  // Kill a *batched* checkpointed sweep mid-journal, then resume with the
  // batch path still enabled: the resume re-forms batches from the items
  // the journal does not hold, and the merged results and report must be
  // bit-identical to an uninterrupted scalar run.
  const AdderFixture fx(2);
  const VbsBackend backend(fx.adder.netlist, fx.outs);
  const auto dir = std::filesystem::temp_directory_path() /
                   ("vbs_batch_session." +
                    std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "rank.mtj").string();

  SweepReport ref_report;
  EvalSession scalar;
  scalar.batch = 1;
  scalar.report = &ref_report;
  const auto reference = sizing::rank_vectors(backend, fx.pairs, 10.0, scalar);

  {
    sizing::Checkpoint killed;
    killed.open(path);
    EvalSession session;
    session.batch = 32;
    session.checkpoint = &killed;
    faultinject::arm(faultinject::Site::kJournalAppend, /*scope=*/5, /*fail_hits=*/1);
    EXPECT_THROW(sizing::rank_vectors(backend, fx.pairs, 10.0, session), NumericalError);
    faultinject::disarm_all();
    EXPECT_LT(killed.journal().size(), fx.pairs.size());
    killed.journal().close();
  }

  sizing::Checkpoint resumed;
  resumed.open(path);
  SweepReport report;
  EvalSession resume_session;
  resume_session.batch = 32;
  resume_session.checkpoint = &resumed;
  resume_session.report = &report;
  const auto merged = sizing::rank_vectors(backend, fx.pairs, 10.0, resume_session);
  expect_same_ranking(merged, reference);
  EXPECT_EQ(report.total, ref_report.total);
  EXPECT_EQ(report.succeeded + report.recovered, ref_report.succeeded + ref_report.recovered);
  EXPECT_EQ(report.failed, ref_report.failed);
  std::filesystem::remove_all(dir);
}

TEST(VbsBatchSession, KilledRandomizedRankResumesBitIdentically) {
  // Kill-and-resume over a *randomized* vector order (with no-op
  // v0 == v1 transitions mixed in): the journal holds an arbitrary
  // subset, so the resume re-forms batches from a ragged remainder whose
  // settle groups no longer arrive in sweep order.
  const AdderFixture fx(2);
  const VbsBackend backend(fx.adder.netlist, fx.outs);
  std::vector<VectorPair> pairs = fx.pairs;
  mtcmos::Rng rng(97);
  for (std::size_t i = pairs.size() - 1; i > 0; --i) {
    std::swap(pairs[i], pairs[rng.uniform_int(0, i)]);
  }
  pairs.resize(96);
  for (std::size_t i = 0; i < 96; i += 16) pairs[i].v1 = pairs[i].v0;  // no-op lanes

  const auto dir = std::filesystem::temp_directory_path() /
                   ("vbs_batch_rand." +
                    std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "rank.mtj").string();

  EvalSession scalar;
  scalar.batch = 1;
  const auto reference = sizing::rank_vectors(backend, pairs, 10.0, scalar);

  {
    sizing::Checkpoint killed;
    killed.open(path);
    EvalSession session;
    session.batch = 24;
    session.checkpoint = &killed;
    faultinject::arm(faultinject::Site::kJournalAppend, /*scope=*/7, /*fail_hits=*/1);
    EXPECT_THROW(sizing::rank_vectors(backend, pairs, 10.0, session), NumericalError);
    faultinject::disarm_all();
    EXPECT_LT(killed.journal().size(), pairs.size());
    killed.journal().close();
  }

  sizing::Checkpoint resumed;
  resumed.open(path);
  EvalSession resume_session;
  resume_session.batch = 24;
  resume_session.checkpoint = &resumed;
  expect_same_ranking(sizing::rank_vectors(backend, pairs, 10.0, resume_session), reference);
  std::filesystem::remove_all(dir);
}

TEST(VbsBatchSession, VbsSiteFaultPlansForceTheScalarPath) {
  // A plan against a VBS site addresses a per-item scope, which the
  // batch kernel cannot honor; the sweep must stand down to the scalar
  // path so the plan fires against exactly its item and the retry
  // recovers it.
  const AdderFixture fx(2);
  const VbsBackend backend(fx.adder.netlist, fx.outs);
  EvalSession session;  // batch = 0: auto, but the armed plan disables it
  SweepReport report;
  session.report = &report;
  faultinject::arm(faultinject::Site::kVbsRun, /*scope=*/3, /*fail_hits=*/1);
  const auto ranked = sizing::rank_vectors(backend, fx.pairs, 10.0, session);
  faultinject::disarm_all();
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.recovered, 1u);  // item 3 failed once, retried, succeeded
  EXPECT_EQ(ranked.size(), sizing::rank_vectors(backend, fx.pairs, 10.0).size());
}

}  // namespace
}  // namespace mtcmos::core
