// Tests for the backend-agnostic evaluation layer (sizing/backend.hpp,
// sizing/session.hpp): cross-backend consistency through one interface,
// bit-identical legacy-shim forwarding, verify_sizing round trips under
// injected SPICE faults, bounded caches, and thread-safe SpiceBackend
// sharing.  Labeled `backend` (and `tsan`, for the concurrency tests) so
// sanitizer builds can target them with `ctest -L backend`.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "circuits/generators.hpp"
#include "sizing/sizing.hpp"
#include "util/faultinject.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace mtcmos {
namespace {

using circuits::make_inverter_tree;
using circuits::make_ripple_adder;
using sizing::DelayEvaluator;
using sizing::EvalBackend;
using sizing::EvalCacheLimits;
using sizing::EvalSession;
using sizing::SpiceBackend;
using sizing::SpiceBackendOptions;
using sizing::VbsBackend;
using sizing::VectorPair;
using units::ns;

// Every test disarms on exit so a failing assertion cannot leak an armed
// plan into the rest of the suite.
class Backend : public ::testing::Test {
 protected:
  void TearDown() override { faultinject::disarm_all(); }
};

std::vector<std::string> adder_outputs(const circuits::RippleAdder& adder) {
  std::vector<std::string> outs;
  for (const auto s : adder.sum) outs.push_back(adder.netlist.net_name(s));
  outs.push_back(adder.netlist.net_name(adder.cout));
  return outs;
}

/// Two-inverter chain: the cheapest circuit the transistor-level engine
/// can measure, for tests that need many SPICE runs.
circuits::InverterTree make_chain() {
  circuits::InverterTreeOptions opt;
  opt.fanout = 1;
  opt.stages = 2;
  return make_inverter_tree(tech07(), opt);
}

bool same_pair(const VectorPair& a, const VectorPair& b) {
  return a.v0 == b.v0 && a.v1 == b.v1;
}

// --- Cross-backend consistency ---

TEST_F(Backend, VbsAndSpiceAgreeOnInverterTreeThroughOneInterface) {
  // Paper Fig. 10 band: both fidelities answer the same delay question
  // within 2x, asked through the identical EvalBackend calls.
  const auto tree = make_inverter_tree(tech07());
  const std::string leaf = tree.netlist.net_name(tree.leaves[0]);
  const VectorPair vp{{false}, {true}};

  const VbsBackend vbs(tree.netlist, {leaf});
  SpiceBackendOptions sopt;
  sopt.tstop = 12.0 * ns;
  const SpiceBackend spice(tree.netlist, {leaf}, sopt);
  const EvalBackend* backends[] = {&vbs, &spice};
  for (const EvalBackend* b : backends) {
    EXPECT_GT(b->delay_at_wl(vp, 8.0), 0.0) << b->name();
    EXPECT_GT(b->delay_baseline(vp), 0.0) << b->name();
  }
  for (const double wl : {5.0, 8.0, 20.0}) {
    const double ratio = vbs.delay_at_wl(vp, wl) / spice.delay_at_wl(vp, wl);
    EXPECT_GT(ratio, 0.4) << "wl=" << wl;
    EXPECT_LT(ratio, 2.2) << "wl=" << wl;
  }
}

TEST_F(Backend, DelayEvaluatorIsAThinVbsBackendAdapter) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const DelayEvaluator eval(adder.netlist, adder_outputs(adder));
  const EvalBackend& backend = eval;
  const VectorPair vp{{false, false, false, false}, {true, true, false, true}};
  EXPECT_STREQ(backend.name(), "vbs");
  EXPECT_EQ(eval.delay_cmos(vp), backend.delay_baseline(vp));
  EXPECT_EQ(eval.delay_at_wl(vp, 10.0), backend.delay_at_wl(vp, 10.0));
  EXPECT_EQ(eval.degradation_pct(vp, 10.0), backend.degradation_pct(vp, 10.0));
}

// --- Session API vs legacy overloads ---

TEST_F(Backend, SessionApiMatchesLegacyOverloadsBitIdentically) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const DelayEvaluator eval(adder.netlist, adder_outputs(adder));
  const EvalBackend& backend = eval;
  const auto vectors = sizing::all_vector_pairs(4);

  // rank_vectors
  const auto legacy_rank = sizing::rank_vectors(eval, vectors, 10.0);
  const auto session_rank = sizing::rank_vectors(backend, vectors, 10.0);
  ASSERT_EQ(legacy_rank.size(), session_rank.size());
  for (std::size_t i = 0; i < legacy_rank.size(); ++i) {
    EXPECT_TRUE(same_pair(legacy_rank[i].pair, session_rank[i].pair)) << i;
    EXPECT_EQ(legacy_rank[i].delay_cmos, session_rank[i].delay_cmos) << i;
    EXPECT_EQ(legacy_rank[i].delay_mtcmos, session_rank[i].delay_mtcmos) << i;
    EXPECT_EQ(legacy_rank[i].degradation_pct, session_rank[i].degradation_pct) << i;
  }

  // size_for_degradation
  const auto legacy_sized = sizing::size_for_degradation(eval, vectors, 5.0);
  const auto session_sized = sizing::size_for_degradation(backend, vectors, 5.0);
  EXPECT_EQ(legacy_sized.wl, session_sized.wl);
  EXPECT_EQ(legacy_sized.degradation_pct, session_sized.degradation_pct);
  EXPECT_TRUE(same_pair(legacy_sized.binding_vector, session_sized.binding_vector));

  // search_worst_vector (identical RNG streams)
  Rng rng_legacy(7), rng_session(7);
  const auto legacy_worst = sizing::search_worst_vector(eval, 10.0, 24, rng_legacy);
  const auto session_worst = sizing::search_worst_vector(backend, 10.0, 24, rng_session);
  EXPECT_TRUE(same_pair(legacy_worst.pair, session_worst.pair));
  EXPECT_EQ(legacy_worst.delay_mtcmos, session_worst.delay_mtcmos);
  EXPECT_EQ(legacy_worst.degradation_pct, session_worst.degradation_pct);

  // screen_vectors
  const auto legacy_screen = sizing::screen_vectors(adder.netlist, vectors, 16);
  const auto session_screen =
      sizing::screen_vectors(adder.netlist, vectors, 16, EvalSession{});
  ASSERT_EQ(legacy_screen.size(), session_screen.size());
  for (std::size_t i = 0; i < legacy_screen.size(); ++i) {
    EXPECT_TRUE(same_pair(legacy_screen[i], session_screen[i])) << i;
  }
}

TEST_F(Backend, RankVectorsRunsOnSpiceBackend) {
  // The same sweep code drives the transistor-level engine: a handful of
  // adder vectors ranked by SPICE-measured degradation.
  const auto adder = make_ripple_adder(tech07(), 2);
  SpiceBackendOptions sopt;
  sopt.tstop = 12.0 * ns;
  const SpiceBackend spice(adder.netlist, adder_outputs(adder), sopt);
  const std::vector<VectorPair> vectors = {
      {{false, false, false, false}, {true, true, true, true}},
      {{false, false, false, false}, {true, false, true, false}},
      {{true, true, false, false}, {false, false, true, true}},
  };
  const auto ranked = sizing::rank_vectors(spice, vectors, 10.0);
  ASSERT_FALSE(ranked.empty());
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_GT(ranked[i].delay_cmos, 0.0) << i;
    EXPECT_GT(ranked[i].delay_mtcmos, 0.0) << i;
    if (i + 1 < ranked.size()) {
      EXPECT_GE(ranked[i].degradation_pct, ranked[i + 1].degradation_pct) << i;
    }
  }
}

TEST_F(Backend, SessionDeadlineFailsItemsInsteadOfThrowing) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);
  SweepReport report;
  EvalSession session;
  session.deadline_s = 1e-12;  // expired before the first item starts
  session.report = &report;
  const auto ranked = sizing::rank_vectors(vbs, vectors, 10.0, session);
  EXPECT_TRUE(ranked.empty());
  EXPECT_EQ(report.failed, vectors.size());
  for (const auto& [index, failure] : report.failures) {
    EXPECT_EQ(failure.code, FailureCode::kDeadlineExceeded) << index;
  }
}

// --- verify_sizing ---

TEST_F(Backend, VerifySizingRoundTripsOnTheReferenceBackend) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const auto outs = adder_outputs(adder);
  const VbsBackend vbs(adder.netlist, outs);
  const auto vectors = sizing::all_vector_pairs(4);
  const auto sized = sizing::size_for_degradation(vbs, vectors, 5.0);

  SpiceBackendOptions sopt;
  sopt.tstop = 12.0 * ns;
  const SpiceBackend spice(adder.netlist, outs, sopt);
  const auto vr = sizing::verify_sizing(vbs, spice, sized, 5.0);
  ASSERT_TRUE(vr.ok) << vr.failure.message();
  EXPECT_EQ(vr.wl, sized.wl);
  // The fast re-measurement hits the same memoized evaluations the sizing
  // itself used, so it reproduces the achieved degradation exactly.
  EXPECT_EQ(vr.fast_degradation_pct, sized.degradation_pct);
  EXPECT_GT(vr.reference_delay, 0.0);
  EXPECT_GT(vr.reference_baseline_delay, 0.0);
  EXPECT_GT(vr.reference_degradation_pct, -50.0);
  EXPECT_LT(vr.reference_degradation_pct, 100.0);
  EXPECT_EQ(vr.delta_pct, vr.reference_degradation_pct - vr.fast_degradation_pct);
}

TEST_F(Backend, VerifySizingReportsHardSpiceFaultInsteadOfThrowing) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const auto outs = adder_outputs(adder);
  const VbsBackend vbs(adder.netlist, outs);
  const auto vectors = sizing::all_vector_pairs(4);
  const auto sized = sizing::size_for_degradation(vbs, vectors, 5.0);

  SpiceBackendOptions sopt;
  sopt.tstop = 12.0 * ns;
  const SpiceBackend spice(adder.netlist, outs, sopt);
  // Every Newton solve fails: the recovery ladder, the per-item retries,
  // and finally verify_sizing's failure report all engage.
  faultinject::arm(faultinject::Site::kNewtonSolve, faultinject::kAnyScope, /*fail_hits=*/-1);
  SweepReport report;
  EvalSession session;
  session.report = &report;
  const auto vr = sizing::verify_sizing(vbs, spice, sized, 5.0, session);
  EXPECT_FALSE(vr.ok);
  EXPECT_FALSE(vr.failure.message().empty());
  // The fast (switch-level) probes are untouched by the SPICE fault.
  EXPECT_EQ(vr.fast_degradation_pct, sized.degradation_pct);
  EXPECT_EQ(report.failed, 2u);  // reference baseline + reference at-W/L
}

TEST_F(Backend, SpiceRecoveryLadderAbsorbsTransientFault) {
  const auto chain = make_chain();
  const std::string leaf = chain.netlist.net_name(chain.leaves[0]);
  SpiceBackendOptions sopt;
  sopt.tstop = 8.0 * ns;
  const SpiceBackend spice(chain.netlist, {leaf}, sopt);
  // One injected Newton failure: attempt 1 dies, the ladder's first rung
  // re-runs the transient clean.
  faultinject::arm(faultinject::Site::kNewtonSolve, faultinject::kAnyScope, /*fail_hits=*/1);
  const auto r = spice.measure_at_wl({{false}, {true}}, 10.0);
  ASSERT_TRUE(r.ok()) << r.failure.message();
  EXPECT_GT(r.attempts, 1);
  EXPECT_GT(r.delay, 0.0);
}

TEST_F(Backend, SpiceRefMeasureCarriesFailureInfo) {
  const auto chain = make_chain();
  const std::string leaf = chain.netlist.net_name(chain.leaves[0]);
  sizing::SpiceRefOptions opt;
  opt.expand.sleep_wl = 10.0;
  opt.tstop = 8.0 * ns;
  sizing::SpiceRef ref(chain.netlist, {leaf}, opt);
  const VectorPair vp{{false}, {true}};

  faultinject::arm(faultinject::Site::kNewtonSolve, faultinject::kAnyScope, /*fail_hits=*/-1);
  const auto failed = ref.measure(vp);
  EXPECT_FALSE(failed.ok());
  EXPECT_TRUE(failed.failed);
  EXPECT_EQ(failed.failure.code, FailureCode::kNewtonDiverged);
  EXPECT_LT(failed.delay, 0.0);  // measurement fields stay at defaults

  faultinject::disarm_all();
  const auto recovered = ref.measure(vp);
  ASSERT_TRUE(recovered.ok()) << recovered.failure.message();
  EXPECT_GT(recovered.delay, 0.0);
}

// --- Cache bounding ---

TEST_F(Backend, VbsCachesAreBoundedAndEvictionIsLossless) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const auto outs = adder_outputs(adder);
  const VbsBackend unbounded(adder.netlist, outs);
  EvalCacheLimits limits;
  limits.max_simulators = 2;
  limits.max_baseline_delays = 3;
  const VbsBackend bounded(adder.netlist, outs, {}, limits);

  const std::vector<double> wls = {4.0, 8.0, 16.0, 32.0, 64.0};
  std::vector<VectorPair> vps;
  for (std::uint64_t v = 1; v <= 6; ++v) {
    vps.push_back({{false, false, false, false},
                   {(v & 1) != 0, (v & 2) != 0, (v & 4) != 0, true}});
  }
  // Two passes so the bounded backend revisits evicted entries.
  for (int pass = 0; pass < 2; ++pass) {
    for (const double wl : wls) {
      for (const auto& vp : vps) {
        EXPECT_EQ(bounded.delay_at_wl(vp, wl), unbounded.delay_at_wl(vp, wl));
        EXPECT_EQ(bounded.delay_baseline(vp), unbounded.delay_baseline(vp));
      }
    }
  }
  const auto stats = bounded.cache_stats();
  EXPECT_LE(stats.sim_entries, 2u);
  EXPECT_EQ(stats.sim_capacity, 2u);
  EXPECT_GT(stats.sim_evictions, 0u);
  EXPECT_LE(stats.baseline_entries, 3u);
  EXPECT_GT(stats.baseline_evictions, 0u);
  EXPECT_GT(stats.sim_hits + stats.sim_misses, 0u);
  const auto unbounded_stats = unbounded.cache_stats();
  EXPECT_EQ(unbounded_stats.sim_entries, wls.size());
  EXPECT_EQ(unbounded_stats.sim_evictions, 0u);
}

TEST_F(Backend, SpiceEngineCacheIsBounded) {
  const auto chain = make_chain();
  const std::string leaf = chain.netlist.net_name(chain.leaves[0]);
  SpiceBackendOptions sopt;
  sopt.tstop = 8.0 * ns;
  sopt.max_engines = 1;
  const SpiceBackend spice(chain.netlist, {leaf}, sopt);
  const VectorPair vp{{false}, {true}};
  EXPECT_GT(spice.delay_at_wl(vp, 5.0), 0.0);
  EXPECT_GT(spice.delay_at_wl(vp, 20.0), 0.0);
  EXPECT_GT(spice.delay_at_wl(vp, 5.0), 0.0);  // rebuilt after eviction
  const auto stats = spice.cache_stats();
  EXPECT_LE(stats.sim_entries, 1u);
  EXPECT_GE(stats.sim_evictions, 2u);
}

// --- Concurrency (tsan targets) ---

TEST_F(Backend, SpiceBackendIsSafeToShareAcrossThreads) {
  const auto chain = make_chain();
  const std::string leaf = chain.netlist.net_name(chain.leaves[0]);
  SpiceBackendOptions sopt;
  sopt.tstop = 8.0 * ns;
  sopt.max_engines = 2;
  const SpiceBackend spice(chain.netlist, {leaf}, sopt);
  const VectorPair vp{{false}, {true}};
  const std::vector<double> wls = {5.0, 20.0};

  util::ThreadPool pool(4);
  const std::vector<double> delays = pool.parallel_map(12, [&](std::size_t i) {
    (void)spice.cache_stats();  // concurrent stats reads must be clean too
    return spice.delay_at_wl(vp, wls[i % wls.size()]);
  });
  for (std::size_t i = 0; i < delays.size(); ++i) {
    EXPECT_GT(delays[i], 0.0) << i;
    // Same W/L, same vector => identical delay regardless of which thread
    // or engine entry served it.
    EXPECT_EQ(delays[i], delays[i % wls.size()]) << i;
  }
}

TEST_F(Backend, VbsBackendEvictionIsSafeUnderConcurrency) {
  const auto adder = make_ripple_adder(tech07(), 2);
  const auto outs = adder_outputs(adder);
  EvalCacheLimits limits;
  limits.max_simulators = 2;  // force constant eviction across 4 live W/Ls
  const VbsBackend bounded(adder.netlist, outs, {}, limits);
  const VbsBackend reference(adder.netlist, outs);
  const std::vector<double> wls = {4.0, 8.0, 16.0, 32.0};
  const VectorPair vp{{false, false, false, false}, {true, true, true, true}};
  std::vector<double> expected;
  for (const double wl : wls) expected.push_back(reference.delay_at_wl(vp, wl));

  util::ThreadPool pool(4);
  const std::vector<double> delays = pool.parallel_map(64, [&](std::size_t i) {
    return bounded.delay_at_wl(vp, wls[i % wls.size()]);
  });
  for (std::size_t i = 0; i < delays.size(); ++i) {
    EXPECT_EQ(delays[i], expected[i % wls.size()]) << i;
  }
  EXPECT_LE(bounded.cache_stats().sim_entries, 2u);
}

}  // namespace
}  // namespace mtcmos
