// mtcmos_sizerd contract tests: line-protocol round trips, admission
// control (coded `overloaded` rejections under flood), request
// deadlines, graceful drain exit codes, cross-request dedup counters,
// and the crash-safety ladder driven by the kDaemon* faultinject sites
// -- kill after accept, after read-before-journal, between journal and
// ack, and mid-row-stream, each followed by a restart that must resume
// journaled work and answer a re-sent request with byte-identical rows.
//
// The daemon runs as a forked child (util::spawn_child) so a SIGKILL
// plan takes out a real process; the fork inherits the test's armed
// plan table, and the daemon's boot-counter generation stamp keeps a
// generation-0 plan from re-firing in the restarted life.

#include "sizing/daemon.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/faultinject.hpp"
#include "util/journal.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"
#include "util/subprocess.hpp"

namespace mtcmos {
namespace {

namespace fs = std::filesystem;
using sizing::Daemon;
using sizing::DaemonOptions;
using util::ChildProcess;
using util::ExitStatus;
using util::LineChannel;

// ------------------------------------------------------------ satellite:
// LineReader short-read hardening.  A writer dribbles two lines one byte
// at a time while bombarding the reader with a no-SA_RESTART signal, so
// reads and polls keep getting interrupted mid-byte; both lines must
// still arrive intact and in order.

void noop_handler(int) {}

TEST(LineReaderHardening, ByteAtATimeInterruptedWritesDeliverWholeLines) {
  struct sigaction sa {};
  sa.sa_handler = noop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART: force EINTR
  struct sigaction old {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const std::string payload = "first line with spaces\nsecond:{\"json\":true}\n";

  const pthread_t reader_thread = ::pthread_self();
  std::thread writer([&] {
    for (const char c : payload) {
      ASSERT_EQ(::write(sv[1], &c, 1), 1);
      ::pthread_kill(reader_thread, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    ::close(sv[1]);
  });

  LineChannel ch(sv[0]);
  std::string line;
  ASSERT_TRUE(ch.recv(line, 10000));
  EXPECT_EQ(line, "first line with spaces");
  ASSERT_TRUE(ch.recv(line, 10000));
  EXPECT_EQ(line, "second:{\"json\":true}");
  EXPECT_FALSE(ch.recv(line, 1000));  // EOF after the writer closed
  EXPECT_TRUE(ch.drained());
  writer.join();
  ::sigaction(SIGUSR1, &old, nullptr);
}

// ---------------------------------------------------- write-stall bound
// A peer that keeps its connection open but never reads must fail the
// write within the stall budget instead of blocking forever (what would
// otherwise pin the daemon executor inside a row stream); a peer that
// does drain lets the same oversized line through.

TEST(WriteLineStall, NonReadingPeerFailsWithinBudgetDrainingPeerSucceeds) {
  ::signal(SIGPIPE, SIG_IGN);
  const std::string line(512 * 1024, 'x');  // far beyond any socket buffer

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const int sndbuf = 8 * 1024;
  ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
  ASSERT_EQ(::fcntl(sv[0], F_SETFL, ::fcntl(sv[0], F_GETFL) | O_NONBLOCK), 0);

  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(util::write_line(sv[0], line, /*stall_timeout_ms=*/200));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_GE(elapsed, 150);   // it did wait out the grace...
  EXPECT_LT(elapsed, 5000);  // ...but not forever
  ::close(sv[0]);
  ::close(sv[1]);

  int rw[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, rw), 0);
  ::setsockopt(rw[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
  ASSERT_EQ(::fcntl(rw[0], F_SETFL, ::fcntl(rw[0], F_GETFL) | O_NONBLOCK), 0);
  std::thread reader([&] {
    char buf[4096];
    std::size_t total = 0;
    while (total < line.size() + 1) {
      const ssize_t n = ::read(rw[1], buf, sizeof(buf));
      if (n <= 0) break;
      total += static_cast<std::size_t>(n);
    }
  });
  EXPECT_TRUE(util::write_line(rw[0], line, /*stall_timeout_ms=*/10000));
  reader.join();
  ::close(rw[0]);
  ::close(rw[1]);
}

// --------------------------------------------------- socket ownership
// open() may reclaim only a *stale* socket file; a path where another
// daemon is still listening must be refused, not silently stolen.

TEST(UnixListenerOwnership, LivePathIsRefusedStaleFileIsReclaimed) {
  const std::string path =
      (fs::temp_directory_path() / ("ul_own." + std::to_string(::getpid()) + ".sock")).string();
  ::unlink(path.c_str());

  util::UnixListener first;
  first.open(path);
  util::UnixListener second;
  EXPECT_THROW(second.open(path), std::runtime_error);
  // The refusal left the live listener untouched.
  const int fd = util::unix_connect(path);
  util::close_fd(fd);
  first.close();

  // A SIGKILLed daemon leaves a bound-but-dead socket file behind;
  // recreate that shape (bind + close without unlink) and expect open()
  // to reclaim it.
  {
    const int s = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(s, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    ASSERT_LT(path.size(), sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ASSERT_EQ(::bind(s, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
    ::close(s);
  }
  second.open(path);  // stale: reclaimed without throwing
  second.close();
}

// --------------------------------------------------------------- harness

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("daemon_test." + std::to_string(::getpid()) + "." +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    faultinject::disarm_all();
    for (const pid_t pid : running_) {
      util::send_signal(pid, SIGKILL);
      util::reap(pid);
    }
    running_.clear();
    fs::remove_all(dir_);
  }

  std::string sock() const { return (dir_ / "d.sock").string(); }
  std::string state(const std::string& name) const { return (dir_ / name).string(); }

  /// Fork a daemon on `state_dir`.  The child inherits whatever
  /// faultinject plans are armed right now.
  ChildProcess start(const std::string& state_dir, int max_queue = 8, int shards = 1,
                     double default_deadline_s = 0.0) {
    DaemonOptions opt;
    opt.socket_path = sock();
    opt.state_dir = state_dir;
    opt.max_queue = max_queue;
    opt.shards = shards;
    opt.default_deadline_s = default_deadline_s;
    opt.poll_interval_ms = 10;
    ChildProcess child = util::spawn_child([opt](int) -> int {
      Daemon daemon(opt);
      return Daemon::exit_code(daemon.serve());
    });
    util::close_fd(child.pipe_fd);
    running_.push_back(child.pid);
    return child;
  }

  ExitStatus wait_exit(const ChildProcess& child) {
    const ExitStatus st = util::reap(child.pid);
    running_.erase(std::remove(running_.begin(), running_.end(), child.pid), running_.end());
    return st;
  }

  /// Connect to the daemon socket, retrying while it boots (or reboots:
  /// a stale socket file from a killed daemon refuses connections until
  /// the restarted listener rebinds).
  std::unique_ptr<LineChannel> connect(int timeout_ms = 15000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (true) {
      try {
        return std::make_unique<LineChannel>(util::unix_connect(sock()));
      } catch (const std::exception&) {
        if (std::chrono::steady_clock::now() >= deadline) throw;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
  }

  static std::string recv_line(LineChannel& ch, int timeout_ms = 60000) {
    std::string line;
    EXPECT_TRUE(ch.recv(line, timeout_ms)) << "expected a protocol line, got timeout/EOF";
    return line;
  }

  struct Stream {
    std::string ack;
    std::vector<std::string> rows;  ///< `row` and `value` lines, in order
    std::string terminal;           ///< `done` or `error` line ("" = EOF first)
  };

  /// Send a request and collect its whole response stream.
  static Stream exchange(LineChannel& ch, const std::string& request, int timeout_ms = 60000) {
    EXPECT_TRUE(ch.send(request));
    Stream s;
    std::string line;
    while (ch.recv(line, timeout_ms)) {
      if (line.find("\"type\":\"ack\"") != std::string::npos) {
        s.ack = line;
      } else if (line.find("\"type\":\"row\"") != std::string::npos ||
                 line.find("\"type\":\"value\"") != std::string::npos) {
        s.rows.push_back(line);
      } else {
        s.terminal = line;
        break;
      }
    }
    return s;
  }

  static bool has(const std::string& line, const std::string& needle) {
    return line.find(needle) != std::string::npos;
  }

  /// Integer value of `"key":N` in a protocol line (-1 when absent).
  static long json_field(const std::string& line, const std::string& key) {
    const std::size_t pos = line.find("\"" + key + "\":");
    if (pos == std::string::npos) return -1;
    return std::atol(line.c_str() + pos + key.size() + 3);
  }

  fs::path dir_;
  std::vector<pid_t> running_;
};

constexpr char kRank[] = "{\"op\":\"rank\",\"circuit\":\"builtin:adder2\",\"wl\":6}";

// ------------------------------------------------------------- protocol

TEST_F(DaemonTest, StatusDrainAndExitZero) {
  const ChildProcess child = start(state("a"));
  auto ch = connect();
  EXPECT_TRUE(ch->send("{\"op\":\"status\"}"));
  const std::string status = recv_line(*ch);
  EXPECT_TRUE(has(status, "\"type\":\"status\"")) << status;
  EXPECT_TRUE(has(status, "\"queue\":0")) << status;
  EXPECT_TRUE(has(status, "\"draining\":false")) << status;

  EXPECT_TRUE(ch->send("{\"op\":\"drain\"}"));
  EXPECT_TRUE(has(recv_line(*ch), "\"type\":\"ack\""));
  const ExitStatus st = wait_exit(child);
  EXPECT_FALSE(st.signaled);
  EXPECT_EQ(st.exit_code, 0);  // drained while idle
}

TEST_F(DaemonTest, BadRequestIsCodedAndKeepsTheConnectionUsable) {
  const ChildProcess child = start(state("a"));
  auto ch = connect();
  EXPECT_TRUE(ch->send("this is not json"));
  std::string err = recv_line(*ch);
  EXPECT_TRUE(has(err, "\"code\":\"bad-request\"")) << err;

  EXPECT_TRUE(ch->send("{\"op\":\"rank\",\"circuit\":\"builtin:nosuch9\"}"));
  err = recv_line(*ch);
  EXPECT_TRUE(has(err, "\"code\":\"bad-request\"")) << err;

  // The connection survives both rejections.
  EXPECT_TRUE(ch->send("{\"op\":\"status\"}"));
  EXPECT_TRUE(has(recv_line(*ch), "\"type\":\"status\""));
  util::send_signal(child.pid, SIGTERM);
  EXPECT_EQ(wait_exit(child).exit_code, 0);
}

TEST_F(DaemonTest, RankStreamsRowsAndDuplicateRequestIsAllDedupHits) {
  const ChildProcess child = start(state("a"));
  auto ch = connect();

  const Stream first = exchange(*ch, kRank);
  EXPECT_TRUE(has(first.ack, "\"type\":\"ack\"")) << first.ack;
  ASSERT_FALSE(first.rows.empty());
  EXPECT_TRUE(has(first.terminal, "\"type\":\"done\"")) << first.terminal;
  EXPECT_TRUE(has(first.terminal, "\"failed\":0")) << first.terminal;
  EXPECT_TRUE(has(first.terminal, "\"dedup_hits\":0")) << first.terminal;
  EXPECT_TRUE(has(first.terminal,
                  "\"dedup_misses\":" + std::to_string(first.rows.size())))
      << first.terminal;

  // Same request again: answered entirely from the shared checkpoint
  // store, with byte-identical rows.
  const Stream second = exchange(*ch, kRank);
  EXPECT_EQ(second.rows, first.rows);
  EXPECT_TRUE(has(second.terminal,
                  "\"dedup_hits\":" + std::to_string(first.rows.size())))
      << second.terminal;
  EXPECT_TRUE(has(second.terminal, "\"dedup_misses\":0")) << second.terminal;

  // Daemon-wide counters on `status` reflect both requests.
  EXPECT_TRUE(ch->send("{\"op\":\"status\"}"));
  const std::string status = recv_line(*ch);
  EXPECT_TRUE(has(status, "\"accepted\":2")) << status;
  EXPECT_TRUE(has(status, "\"completed\":2")) << status;
  EXPECT_TRUE(has(status, "\"dedup_hits\":" + std::to_string(first.rows.size()))) << status;

  EXPECT_TRUE(ch->send("{\"op\":\"drain\"}"));
  EXPECT_EQ(wait_exit(child).exit_code, 0);
}

TEST_F(DaemonTest, SizeAndVerifyReturnSizingFields) {
  const ChildProcess child = start(state("a"));
  auto ch = connect();
  const Stream sized = exchange(
      *ch, "{\"op\":\"size\",\"circuit\":\"builtin:adder1\",\"target_pct\":8,\"vectors\":16}");
  EXPECT_TRUE(has(sized.terminal, "\"type\":\"done\"")) << sized.terminal;
  EXPECT_TRUE(has(sized.terminal, "\"wl\":")) << sized.terminal;
  EXPECT_TRUE(has(sized.terminal, "\"degradation_pct\":")) << sized.terminal;

  const Stream verified = exchange(
      *ch, "{\"op\":\"verify\",\"circuit\":\"builtin:adder1\",\"target_pct\":8,\"vectors\":16}",
      300000);
  EXPECT_TRUE(has(verified.terminal, "\"type\":\"done\"")) << verified.terminal;
  EXPECT_TRUE(has(verified.terminal, "\"meets_target\":")) << verified.terminal;

  EXPECT_TRUE(ch->send("{\"op\":\"drain\"}"));
  EXPECT_EQ(wait_exit(child).exit_code, 0);
}

TEST_F(DaemonTest, CampaignRunsToATableAndRepeatReplaysChunks) {
  const ChildProcess child = start(state("a"));
  auto ch = connect();
  const std::string request =
      "{\"op\":\"campaign\",\"spec\":{\"circuit\":\"builtin:adder1\",\"target_pct\":10.0,"
      "\"wl_grid\":[10,80],\"chunk\":4}}";
  const Stream first = exchange(*ch, request, 300000);
  ASSERT_TRUE(has(first.terminal, "\"type\":\"done\"")) << first.terminal;
  EXPECT_TRUE(has(first.terminal, "\"table_path\":")) << first.terminal;
  EXPECT_TRUE(has(first.terminal, "\"chunks_replayed\":0")) << first.terminal;
  // Campaign dedup is chunk-granular (campaigns journal into their own
  // checkpoint, not the shared store): a fresh run is all misses.
  EXPECT_EQ(json_field(first.terminal, "dedup_hits"), 0) << first.terminal;
  EXPECT_EQ(json_field(first.terminal, "dedup_misses"),
            json_field(first.terminal, "chunks_run"))
      << first.terminal;

  // Same spec again: the campaign checkpoint replays every chunk.
  const Stream second = exchange(*ch, request, 300000);
  ASSERT_TRUE(has(second.terminal, "\"type\":\"done\"")) << second.terminal;
  EXPECT_TRUE(has(second.terminal, "\"chunks_run\":0")) << second.terminal;
  EXPECT_EQ(json_field(second.terminal, "dedup_misses"), 0) << second.terminal;
  EXPECT_EQ(json_field(second.terminal, "dedup_hits"),
            json_field(second.terminal, "chunks_replayed"))
      << second.terminal;

  EXPECT_TRUE(ch->send("{\"op\":\"drain\"}"));
  EXPECT_EQ(wait_exit(child).exit_code, 0);
}

// ------------------------------------------------------------ admission

TEST_F(DaemonTest, FloodPastTheQueueBoundIsRejectedOverloaded) {
  // max_queue = 0: an idle daemon still admits (the executor takes the
  // request), but anything arriving while one executes is rejected.
  const ChildProcess child = start(state("a"), /*max_queue=*/0);
  auto ch = connect();
  EXPECT_TRUE(ch->send("{\"op\":\"sleep\",\"seconds\":2}"));
  EXPECT_TRUE(has(recv_line(*ch), "\"type\":\"ack\""));

  int overloaded = 0;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ch->send("{\"op\":\"sleep\",\"seconds\":2." + std::to_string(i) + "1}"));
    const std::string reply = recv_line(*ch);
    EXPECT_TRUE(has(reply, "\"code\":\"overloaded\"")) << reply;
    if (has(reply, "\"code\":\"overloaded\"")) ++overloaded;
  }
  EXPECT_EQ(overloaded, 5);

  // `status` bypasses the queue: the daemon stays observable under load.
  EXPECT_TRUE(ch->send("{\"op\":\"status\"}"));
  const std::string status = recv_line(*ch);
  EXPECT_TRUE(has(status, "\"rejected\":5")) << status;
  EXPECT_TRUE(has(status, "\"max_queue\":0")) << status;

  EXPECT_TRUE(has(recv_line(*ch, 30000), "\"type\":\"done\""));  // the admitted sleep
  EXPECT_TRUE(ch->send("{\"op\":\"drain\"}"));
  EXPECT_EQ(wait_exit(child).exit_code, 0);
}

TEST_F(DaemonTest, RequestsAfterDrainAreRejectedDraining) {
  const ChildProcess child = start(state("a"));
  auto ch = connect();
  EXPECT_TRUE(ch->send("{\"op\":\"sleep\",\"seconds\":0.5}"));
  EXPECT_TRUE(has(recv_line(*ch), "\"type\":\"ack\""));
  EXPECT_TRUE(ch->send("{\"op\":\"drain\"}"));
  EXPECT_TRUE(has(recv_line(*ch), "\"op\":\"drain\""));
  EXPECT_TRUE(ch->send("{\"op\":\"sleep\",\"seconds\":0.6}"));
  EXPECT_TRUE(has(recv_line(*ch), "\"code\":\"draining\""));
  // The drain op still finishes admitted work before exit 0.
  EXPECT_TRUE(has(recv_line(*ch, 30000), "\"type\":\"done\""));
  EXPECT_EQ(wait_exit(child).exit_code, 0);
}

// ------------------------------------------------------------ deadlines

TEST_F(DaemonTest, DeadlineCancelsTheInFlightRequestWithACodedError) {
  const ChildProcess child = start(state("a"));
  auto ch = connect();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(ch->send("{\"op\":\"sleep\",\"seconds\":30,\"deadline_s\":0.3}"));
  EXPECT_TRUE(has(recv_line(*ch), "\"type\":\"ack\""));
  const std::string reply = recv_line(*ch, 15000);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(has(reply, "\"code\":\"deadline\"")) << reply;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 10);
  EXPECT_TRUE(ch->send("{\"op\":\"drain\"}"));
  // A deadline is not an interruption of the daemon itself: drain exits 0.
  EXPECT_EQ(wait_exit(child).exit_code, 0);
}

// ---------------------------------------------------------------- drain

TEST_F(DaemonTest, SigtermWhileIdleExitsZero) {
  const ChildProcess child = start(state("a"));
  auto ch = connect();
  EXPECT_TRUE(ch->send("{\"op\":\"status\"}"));
  recv_line(*ch);  // daemon is up and answering
  util::send_signal(child.pid, SIGTERM);
  const ExitStatus st = wait_exit(child);
  EXPECT_FALSE(st.signaled);
  EXPECT_EQ(st.exit_code, 0);
}

TEST_F(DaemonTest, SigtermWhileBusyCancelsAndExitsThree) {
  const ChildProcess child = start(state("a"));
  auto ch = connect();
  EXPECT_TRUE(ch->send("{\"op\":\"sleep\",\"seconds\":30}"));
  EXPECT_TRUE(has(recv_line(*ch), "\"type\":\"ack\""));
  util::send_signal(child.pid, SIGTERM);
  const std::string reply = recv_line(*ch, 15000);
  EXPECT_TRUE(has(reply, "\"code\":\"cancelled\"")) << reply;
  const ExitStatus st = wait_exit(child);
  EXPECT_FALSE(st.signaled);
  EXPECT_EQ(st.exit_code, 3);  // interrupted admitted work: resumable
}

// --------------------------------------------------- crash-safety ladder

TEST_F(DaemonTest, KillAfterAcceptThenRestartServes) {
  faultinject::arm_generation(faultinject::Site::kDaemonAccept, /*scope=*/0,
                              /*generation=*/0, 1);
  const ChildProcess first = start(state("a"));
  auto ch = connect();
  std::string line;
  EXPECT_FALSE(ch->recv(line, 15000));  // daemon died on accept: EOF, no line
  const ExitStatus st = wait_exit(first);
  EXPECT_TRUE(st.signaled);
  EXPECT_EQ(st.term_signal, SIGKILL);

  const ChildProcess second = start(state("a"));
  ch = connect();
  EXPECT_TRUE(ch->send("{\"op\":\"status\"}"));
  EXPECT_TRUE(has(recv_line(*ch), "\"type\":\"status\""));
  EXPECT_TRUE(ch->send("{\"op\":\"drain\"}"));
  EXPECT_EQ(wait_exit(second).exit_code, 0);
}

TEST_F(DaemonTest, KillBeforeJournalLosesTheUnackedRequestOnly) {
  faultinject::arm_generation(faultinject::Site::kDaemonRead, /*scope=*/0,
                              /*generation=*/0, 1);
  const ChildProcess first = start(state("a"));
  auto ch = connect();
  EXPECT_TRUE(ch->send("{\"op\":\"sleep\",\"seconds\":0.1}"));
  std::string line;
  EXPECT_FALSE(ch->recv(line, 15000));  // died before journal: no ack
  EXPECT_EQ(wait_exit(first).term_signal, SIGKILL);

  // Nothing was acked, so nothing resumes; the client re-sends.
  const ChildProcess second = start(state("a"));
  ch = connect();
  EXPECT_TRUE(ch->send("{\"op\":\"status\"}"));
  EXPECT_TRUE(has(recv_line(*ch), "\"resumed\":0"));
  const Stream again = exchange(*ch, "{\"op\":\"sleep\",\"seconds\":0.1}");
  EXPECT_TRUE(has(again.terminal, "\"type\":\"done\"")) << again.terminal;
  EXPECT_TRUE(ch->send("{\"op\":\"drain\"}"));
  EXPECT_EQ(wait_exit(second).exit_code, 0);
}

TEST_F(DaemonTest, KillBetweenJournalAndAckResumesHeadlessAtRestart) {
  faultinject::arm_generation(faultinject::Site::kDaemonAckLost, /*scope=*/0,
                              /*generation=*/0, 1);
  const ChildProcess first = start(state("a"));
  auto ch = connect();
  EXPECT_TRUE(ch->send("{\"op\":\"sleep\",\"seconds\":0.1}"));
  std::string line;
  EXPECT_FALSE(ch->recv(line, 15000));  // journaled, but died before the ack
  EXPECT_EQ(wait_exit(first).term_signal, SIGKILL);

  // The acked-side contract: journal strictly before ack means the
  // journaled request is re-run headless even though no ack made it out.
  const ChildProcess second = start(state("a"));
  ch = connect();
  EXPECT_TRUE(ch->send("{\"op\":\"status\"}"));
  EXPECT_TRUE(has(recv_line(*ch), "\"resumed\":1"));
  EXPECT_TRUE(ch->send("{\"op\":\"drain\"}"));
  EXPECT_EQ(wait_exit(second).exit_code, 0);  // drain finishes the resumed work
}

TEST_F(DaemonTest, KillMidStreamThenRestartAnswersByteIdentical) {
  // Reference: an uninterrupted run in its own state dir.
  const ChildProcess ref = start(state("ref"));
  auto ch = connect();
  const Stream want = exchange(*ch, kRank);
  ASSERT_TRUE(has(want.terminal, "\"type\":\"done\"")) << want.terminal;
  ASSERT_GT(want.rows.size(), 110u);
  EXPECT_TRUE(ch->send("{\"op\":\"drain\"}"));
  EXPECT_EQ(wait_exit(ref).exit_code, 0);

  // Kill the daemon right before it streams row 100 (generation 0 only:
  // the restarted daemon inherits the same plan table but boots with
  // generation 1, so the resume does not die again).
  faultinject::arm_generation(faultinject::Site::kDaemonWrite, /*scope=*/100,
                              /*generation=*/0, 1);
  const ChildProcess killed = start(state("kill"));
  ch = connect();
  const Stream partial = exchange(*ch, kRank);
  EXPECT_EQ(partial.terminal, "");  // EOF mid-stream, no done line
  ASSERT_EQ(partial.rows.size(), 100u);
  for (std::size_t i = 0; i < partial.rows.size(); ++i) {
    EXPECT_EQ(partial.rows[i], want.rows[i]) << "partial row " << i;
  }
  EXPECT_EQ(wait_exit(killed).term_signal, SIGKILL);

  // Restart on the same state dir: the journaled request resumes
  // headless into the store; re-sending it answers from the store with
  // the byte-identical full row stream.
  const ChildProcess second = start(state("kill"));
  ch = connect();
  EXPECT_TRUE(ch->send("{\"op\":\"status\"}"));
  EXPECT_TRUE(has(recv_line(*ch), "\"resumed\":1"));
  const Stream replay = exchange(*ch, kRank);
  EXPECT_EQ(replay.rows, want.rows);
  EXPECT_TRUE(has(replay.terminal, "\"type\":\"done\"")) << replay.terminal;
  EXPECT_TRUE(has(replay.terminal,
                  "\"dedup_hits\":" + std::to_string(want.rows.size())))
      << replay.terminal;
  EXPECT_TRUE(ch->send("{\"op\":\"drain\"}"));
  EXPECT_EQ(wait_exit(second).exit_code, 0);
}

// ------------------------------------------------- key-collision fallback
// The 64-bit FNV-1a request key is only a journal index; the canonical
// bytes stored as the req: value are the identity.  Simulate a hash
// collision by pre-seeding the journal with a *different* request's
// canonical bytes under exactly the key our request hashes to: the
// daemon must fall back to a suffixed key instead of silently answering
// with (or overwriting) the other request's journal state.

TEST_F(DaemonTest, HashCollisionFallsBackToSuffixedJournalKey) {
  // Local replica of the daemon's canonical form + FNV-1a key for a
  // sleep request.  If the identity format ever drifts, the suffix
  // assertions below fail loudly -- that format is a journal
  // compatibility contract, not an implementation detail.
  const std::string canonical = "{\"op\":\"sleep\",\"seconds\":" + util::json_double(0.05) + "}";
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : canonical) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char key[17];
  std::snprintf(key, sizeof(key), "%016llx", static_cast<unsigned long long>(h));

  const std::string other = "{\"op\":\"sleep\",\"seconds\":" + util::json_double(0.01) + "}";
  fs::create_directories(state("a"));
  {
    util::Journal j;
    j.open(state("a") + "/requests.mtj");
    j.append(std::string("req:") + key, other);
    j.close();
  }

  // Boot resumes the seeded (valid, unfinished) request headless, then
  // the colliding request must still run and journal under "<key>-1".
  const ChildProcess child = start(state("a"));
  auto ch = connect();
  EXPECT_TRUE(ch->send("{\"op\":\"status\"}"));
  EXPECT_TRUE(has(recv_line(*ch), "\"resumed\":1"));
  const Stream s = exchange(*ch, "{\"op\":\"sleep\",\"seconds\":0.05}");
  EXPECT_TRUE(has(s.ack, std::string("\"req\":\"") + key + "-1\"")) << s.ack;
  EXPECT_TRUE(has(s.terminal, "\"type\":\"done\"")) << s.terminal;
  EXPECT_TRUE(ch->send("{\"op\":\"drain\"}"));
  EXPECT_EQ(wait_exit(child).exit_code, 0);

  util::Journal j;
  j.open(state("a") + "/requests.mtj");
  const std::string* seeded = j.find(std::string("req:") + key);
  ASSERT_NE(seeded, nullptr);
  EXPECT_EQ(*seeded, other);  // the colliding request did not clobber it
  const std::string* ours = j.find(std::string("req:") + key + "-1");
  ASSERT_NE(ours, nullptr);
  EXPECT_EQ(*ours, canonical);
  EXPECT_NE(j.find(std::string("done:") + key + "-1"), nullptr);
}

// ------------------------------------------------------------- sharding

TEST_F(DaemonTest, ShardedRankMatchesSerialByteForByte) {
  const ChildProcess serial = start(state("serial"), 8, /*shards=*/1);
  auto ch = connect();
  const Stream want = exchange(*ch, kRank);
  ASSERT_TRUE(has(want.terminal, "\"type\":\"done\"")) << want.terminal;
  EXPECT_TRUE(ch->send("{\"op\":\"drain\"}"));
  EXPECT_EQ(wait_exit(serial).exit_code, 0);

  const ChildProcess sharded = start(state("sharded"), 8, /*shards=*/2);
  ch = connect();
  const Stream got = exchange(*ch, kRank, 300000);
  EXPECT_EQ(got.rows, want.rows);
  EXPECT_TRUE(has(got.terminal, "\"type\":\"done\"")) << got.terminal;
  EXPECT_TRUE(ch->send("{\"op\":\"drain\"}"));
  EXPECT_EQ(wait_exit(sharded).exit_code, 0);
}

}  // namespace
}  // namespace mtcmos
