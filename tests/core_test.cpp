// Tests for the variable-breakpoint switch-level simulator: the Eq. 5
// solver, single-gate delay against the closed form, event semantics
// (Fig. 9), extensions, and agreement with first principles.

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/generators.hpp"
#include "core/glitch.hpp"
#include "core/vbs.hpp"
#include "core/vx_solver.hpp"
#include "models/sleep_transistor.hpp"
#include "models/technology.hpp"
#include "netlist/bits.hpp"
#include "util/error.hpp"
#include "util/units.hpp"
#include "waveform/measure.hpp"

namespace mtcmos::core {
namespace {

using circuits::make_inverter_chain;
using circuits::make_inverter_tree;
using circuits::make_ripple_adder;
using netlist::bits_from_uint;
using netlist::concat_bits;
using netlist::Netlist;
using mtcmos::units::fF;
using mtcmos::units::ns;
using mtcmos::units::ps;

// --- Vx solver ---

TEST(VxSolver, ZeroResistanceGivesFullDrive) {
  const Technology t = tech07();
  const VxSolution sol = solve_vx(0.0, t.vdd, t.nmos_low, 1e-3);
  EXPECT_DOUBLE_EQ(sol.vx, 0.0);
  EXPECT_NEAR(sol.gate_drive, t.vdd - t.nmos_low.vt0, 1e-12);
}

TEST(VxSolver, ZeroBetaGivesNoCurrent) {
  const Technology t = tech07();
  const VxSolution sol = solve_vx(1000.0, t.vdd, t.nmos_low, 0.0);
  EXPECT_DOUBLE_EQ(sol.vx, 0.0);
  EXPECT_DOUBLE_EQ(sol.total_current, 0.0);
}

TEST(VxSolver, SatisfiesEquationFive) {
  const Technology t = tech07();
  for (double r : {100.0, 1000.0, 5000.0}) {
    for (double beta : {1e-4, 1e-3, 5e-3}) {
      const VxSolution sol = solve_vx(r, t.vdd, t.nmos_low, beta);
      // Vx / R == (beta/2) (Vdd - Vx - Vtn)^2
      const double lhs = sol.vx / r;
      const double rhs = 0.5 * beta * sol.gate_drive * sol.gate_drive;
      EXPECT_NEAR(lhs, rhs, 1e-9 * std::max(lhs, 1e-12)) << "r=" << r << " beta=" << beta;
      EXPECT_NEAR(sol.vx + sol.gate_drive + sol.vtn, t.vdd, 1e-9);
    }
  }
}

TEST(VxSolver, VxIncreasesWithBetaAndR) {
  const Technology t = tech07();
  double prev = -1.0;
  for (double beta : {1e-4, 3e-4, 1e-3, 3e-3}) {
    const double vx = solve_vx(1000.0, t.vdd, t.nmos_low, beta).vx;
    EXPECT_GT(vx, prev);
    prev = vx;
  }
  prev = -1.0;
  for (double r : {100.0, 300.0, 1000.0, 3000.0}) {
    const double vx = solve_vx(r, t.vdd, t.nmos_low, 1e-3).vx;
    EXPECT_GT(vx, prev);
    prev = vx;
  }
}

TEST(VxSolver, VxBoundedByVddMinusVt) {
  const Technology t = tech07();
  const VxSolution sol = solve_vx(1e6, t.vdd, t.nmos_low, 1e-2);  // absurdly weak sleep
  EXPECT_LT(sol.vx, t.vdd - t.nmos_low.vt0);
  EXPECT_GT(sol.gate_drive, 0.0);
}

TEST(VxSolver, BodyEffectLowersVxAndCurrent) {
  const Technology t = tech07();
  const VxSolution plain = solve_vx(2000.0, t.vdd, t.nmos_low, 2e-3, false);
  const VxSolution body = solve_vx(2000.0, t.vdd, t.nmos_low, 2e-3, true);
  EXPECT_GT(body.vtn, plain.vtn);                    // threshold rises with Vsb
  EXPECT_LT(body.total_current, plain.total_current);  // so current drops
  EXPECT_LT(body.vx, plain.vx);                      // and the bounce shrinks
  // Consistency of the body-corrected fixed point.
  EXPECT_NEAR(body.vx / 2000.0, 0.5 * 2e-3 * body.gate_drive * body.gate_drive, 1e-9);
}

TEST(VxSolver, GateCurrentShare) {
  const Technology t = tech07();
  const VxSolution sol = solve_vx(1000.0, t.vdd, t.nmos_low, 3e-3);
  const double i1 = gate_discharge_current(1e-3, sol);
  const double i2 = gate_discharge_current(2e-3, sol);
  EXPECT_NEAR(i1 + i2, sol.total_current, 1e-12);
  EXPECT_NEAR(i2 / i1, 2.0, 1e-9);
}

// --- Single-inverter VBS behaviour ---

Netlist single_inverter(const Technology& t, double load) {
  Netlist nl(t);
  const auto in = nl.add_input("in");
  const auto out = nl.add_inv("inv", in);
  nl.add_load(out, load);
  return nl;
}

TEST(Vbs, InverterFallingDelayMatchesClosedForm) {
  // With R = 0 the paper's model is exact: tphl = CL (Vdd/2) / Isat.
  const Technology t = tech07();
  Netlist nl = single_inverter(t, 50.0 * fF);
  VbsOptions opt;
  opt.sleep_resistance = 0.0;
  const VbsSimulator sim(nl, opt);
  const double d = sim.delay({false}, {true}, "in", "inv.out");
  const double beta = t.nmos_low.kp * t.wn_default / t.lmin;
  const double isat = 0.5 * beta * (t.vdd - t.nmos_low.vt0) * (t.vdd - t.nmos_low.vt0);
  const double cl = nl.output_load(0);
  EXPECT_NEAR(d, cl * (t.vdd / 2.0) / isat, 1e-15);
}

TEST(Vbs, InverterRisingDelayUsesPullUp) {
  const Technology t = tech07();
  Netlist nl = single_inverter(t, 50.0 * fF);
  const VbsSimulator sim(nl, {});
  const double d = sim.delay({true}, {false}, "in", "inv.out");
  const double beta_p = t.pmos_low.kp * t.wp_default / t.lmin;
  const double ip = 0.5 * beta_p * (t.vdd - t.pmos_low.vt0) * (t.vdd - t.pmos_low.vt0);
  const double cl = nl.output_load(0);
  EXPECT_NEAR(d, cl * (t.vdd / 2.0) / ip, 1e-15);
}

TEST(Vbs, SleepResistanceSlowsFallingOnly) {
  const Technology t = tech07();
  Netlist nl = single_inverter(t, 50.0 * fF);
  VbsOptions fast;
  VbsOptions slow;
  slow.sleep_resistance = 3000.0;
  const VbsSimulator s_fast(nl, fast);
  const VbsSimulator s_slow(nl, slow);
  EXPECT_GT(s_slow.delay({false}, {true}, "in", "inv.out"),
            s_fast.delay({false}, {true}, "in", "inv.out"));
  EXPECT_DOUBLE_EQ(s_slow.delay({true}, {false}, "in", "inv.out"),
                   s_fast.delay({true}, {false}, "in", "inv.out"));
}

TEST(Vbs, DelayMonotoneInSleepResistance) {
  const Technology t = tech07();
  Netlist nl = single_inverter(t, 50.0 * fF);
  double prev = 0.0;
  for (double r : {0.0, 500.0, 1000.0, 2000.0, 4000.0}) {
    VbsOptions opt;
    opt.sleep_resistance = r;
    const double d = VbsSimulator(nl, opt).delay({false}, {true}, "in", "inv.out");
    EXPECT_GT(d, prev) << "r=" << r;
    prev = d;
  }
}

TEST(Vbs, NoInputChangeMeansNoBreakpointsBeyondSetup) {
  const Technology t = tech07();
  Netlist nl = single_inverter(t, 50.0 * fF);
  const VbsSimulator sim(nl, {});
  const VbsResult res = sim.run({true}, {true});
  EXPECT_EQ(res.breakpoints, 0u);
  EXPECT_DOUBLE_EQ(res.outputs.get("inv.out").last_value(), 0.0);
}

TEST(Vbs, OutputWaveformIsMonotonePwl) {
  const Technology t = tech07();
  Netlist nl = single_inverter(t, 50.0 * fF);
  VbsOptions opt;
  opt.sleep_resistance = 1000.0;
  const VbsResult res = VbsSimulator(nl, opt).run({false}, {true});
  const Pwl& w = res.outputs.get("inv.out");
  for (std::size_t i = 0; i + 1 < w.size(); ++i) {
    EXPECT_LE(w.value_at(i + 1), w.value_at(i) + 1e-12);
  }
  EXPECT_DOUBLE_EQ(w.last_value(), 0.0);
}

// --- Chain and tree: event propagation ---

TEST(Vbs, ChainPropagatesStageByStage) {
  const auto chain = make_inverter_chain(tech07(), 4);
  const VbsSimulator sim(chain.netlist, {});
  const VbsResult res = sim.run({false}, {true});
  const double vdd = tech07().vdd;
  double prev_cross = 0.0;
  for (int i = 0; i < 4; ++i) {
    const auto& w = res.outputs.get(chain.netlist.net_name(chain.outputs[static_cast<std::size_t>(i)]));
    const auto cross = w.crossing(0.5 * vdd, Edge::kAny, 0.0);
    ASSERT_TRUE(cross.has_value()) << "stage " << i;
    EXPECT_GT(*cross, prev_cross) << "stage " << i;
    prev_cross = *cross;
  }
}

TEST(Vbs, TreeThirdStageBouncesHardest) {
  // Paper Fig. 5: a small bump when the first inverter discharges, a large
  // bump when all nine third-stage inverters discharge.  For the 0->1
  // input, stages 1 and 3 discharge.
  const auto tree = make_inverter_tree(tech07());
  VbsOptions opt;
  opt.sleep_resistance = SleepTransistor(tech07(), 8.0).reff();
  const VbsResult res = VbsSimulator(tree.netlist, opt).run({false}, {true});
  const Pwl& vx = res.virtual_ground;
  EXPECT_GT(res.vx_peak, 0.05);
  // The peak must occur during the third stage, i.e. after the second
  // stage output has risen.
  const auto& s2 = res.outputs.get(tree.netlist.net_name(tree.stage_outputs[1][0]));
  const auto t_s2 = s2.crossing(0.6, Edge::kRising);
  ASSERT_TRUE(t_s2.has_value());
  EXPECT_GT(vx.time_of_max(), *t_s2);
}

TEST(Vbs, TreeDelayGrowsAsSleepShrinks) {
  const auto tree = make_inverter_tree(tech07());
  const std::string leaf = tree.netlist.net_name(tree.leaves[0]);
  double prev = 0.0;
  for (double wl : {20.0, 14.0, 8.0, 2.0}) {
    VbsOptions opt;
    opt.sleep_resistance = SleepTransistor(tech07(), wl).reff();
    const double d = VbsSimulator(tree.netlist, opt).delay({false}, {true}, "in", leaf);
    EXPECT_GT(d, prev) << "wl=" << wl;
    prev = d;
  }
}

TEST(Vbs, SimultaneousDischargersSlowerThanSolo) {
  // Two inverters sharing the sleep resistor discharge slower together
  // than one alone -- the core MTCMOS interaction (paper Section 5.1).
  const Technology t = tech07();
  Netlist nl(t);
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto oa = nl.add_inv("ga", a);
  nl.add_inv("gb", b);
  nl.add_load(oa, 50.0 * fF);
  nl.add_load(nl.find_net("gb.out").value(), 50.0 * fF);
  VbsOptions opt;
  opt.sleep_resistance = 2000.0;
  const VbsSimulator sim(nl, opt);
  const double solo = sim.delay({false, true}, {true, true}, "a", "ga.out");
  const double both = sim.delay({false, false}, {true, true}, "a", "ga.out");
  EXPECT_GT(both, solo * 1.05);
}

TEST(Vbs, AdderComputesCorrectFinalLevels) {
  const auto adder = make_ripple_adder(tech07(), 3);
  VbsOptions opt;
  opt.sleep_resistance = SleepTransistor(tech07(), 10.0).reff();
  const VbsSimulator sim(adder.netlist, opt);
  for (const auto& [a0, b0, a1, b1] :
       std::vector<std::array<std::uint64_t, 4>>{{0, 0, 7, 1}, {1, 6, 5, 5}, {3, 4, 7, 7}}) {
    const auto v0 = concat_bits(bits_from_uint(a0, 3), bits_from_uint(b0, 3));
    const auto v1 = concat_bits(bits_from_uint(a1, 3), bits_from_uint(b1, 3));
    const VbsResult res = sim.run(v0, v1);
    const auto expect = adder.netlist.evaluate(v1);
    const double vdd = tech07().vdd;
    for (int i = 0; i < 3; ++i) {
      const auto& w =
          res.outputs.get(adder.netlist.net_name(adder.sum[static_cast<std::size_t>(i)]));
      const bool high = w.last_value() > 0.5 * vdd;
      EXPECT_EQ(high, expect[static_cast<std::size_t>(adder.sum[static_cast<std::size_t>(i)])])
          << "bit " << i;
    }
  }
}

TEST(Vbs, GlitchReversalHandled) {
  // NAND(a, b) with a: 0->1 and b: 1->0 arriving later creates a glitch:
  // output starts falling when a rises, then recovers when b falls.  The
  // simulator must flip the drive mid-transition without error.
  const Technology t = tech07();
  Netlist nl(t);
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto inv_b = nl.add_inv("dly", b);  // delays b's effect on the nand
  const auto out = nl.net("n.out");
  nl.add_gate("n", netlist::SpExpr::series({netlist::SpExpr::input(0), netlist::SpExpr::input(1)}),
              {a, inv_b}, out);
  nl.add_load(out, 30.0 * fF);
  nl.add_load(inv_b, 30.0 * fF);
  VbsOptions opt;
  opt.sleep_resistance = 1500.0;
  // a rises (nand starts discharging since inv_b is still high), then
  // inv_b falls and the nand output must recover to vdd.
  const VbsResult res = VbsSimulator(nl, opt).run({false, false}, {true, true});
  const Pwl& w = res.outputs.get("n.out");
  EXPECT_LT(w.min_value(), t.vdd)       // dipped
      << "expected a glitch dip";
  EXPECT_DOUBLE_EQ(w.last_value(), t.vdd);  // recovered
}

// --- Glitch analysis ---

TEST(Glitch, CleanTransitionReportsNothing) {
  const auto chain = make_inverter_chain(tech07(), 3);
  const VbsSimulator sim(chain.netlist, {});
  const auto res = sim.run({false}, {true});
  const auto rep = analyze_glitches(res, chain.netlist, {false}, {true});
  EXPECT_EQ(rep.total_extra_crossings, 0);
  EXPECT_TRUE(rep.glitching_nets.empty());
}

TEST(Glitch, DetectsNandGlitchDipAndReversal) {
  // The same circuit as Vbs.GlitchReversalHandled: the NAND output dips
  // and recovers -- a reversed partial swing the report must flag.
  const Technology t = tech07();
  Netlist nl(t);
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto inv_b = nl.add_inv("dly", b);
  const auto out = nl.net("n.out");
  nl.add_gate("n", netlist::SpExpr::series({netlist::SpExpr::input(0), netlist::SpExpr::input(1)}),
              {a, inv_b}, out);
  nl.add_load(out, 30.0 * fF);
  nl.add_load(inv_b, 30.0 * fF);
  VbsOptions opt;
  opt.sleep_resistance = 1500.0;
  const VbsSimulator sim(nl, opt);
  const auto res = sim.run({false, false}, {true, true});
  const auto rep = analyze_glitches(res, nl, {false, false}, {true, true});
  ASSERT_FALSE(rep.glitching_nets.empty());
  bool found = false;
  for (const auto& ng : rep.glitching_nets) {
    if (ng.net == out) {
      found = true;
      EXPECT_GT(ng.worst_partial, 0.05);  // a visible dip
    }
  }
  EXPECT_TRUE(found);
  EXPECT_GT(rep.wasted_charge_cap, 0.0);
}

TEST(Glitch, ExtraCrossingsCountedWhenDipCrossesThreshold) {
  // Heavier glitch: make the dip deep enough to cross Vdd/2 (delay the
  // recovering input further with a loaded buffer).
  const Technology t = tech07();
  Netlist nl(t);
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto d1 = nl.add_inv("d1", b);
  nl.add_load(d1, 150.0 * fF);  // slow: the NAND dips deep before recovery
  const auto out = nl.net("n.out");
  nl.add_gate("n", netlist::SpExpr::series({netlist::SpExpr::input(0), netlist::SpExpr::input(1)}),
              {a, d1}, out);
  nl.add_load(out, 20.0 * fF);
  const VbsSimulator sim(nl, {});
  const auto res = sim.run({false, false}, {true, true});
  // Functionally out stays high (a=1, d1 ends low) => any crossing pair is
  // glitch activity.
  const auto rep = analyze_glitches(res, nl, {false, false}, {true, true});
  EXPECT_GE(rep.total_extra_crossings, 2);
}

TEST(Glitch, InputSizeValidated) {
  const auto chain = make_inverter_chain(tech07(), 2);
  const VbsSimulator sim(chain.netlist, {});
  const auto res = sim.run({false}, {true});
  EXPECT_THROW(analyze_glitches(res, chain.netlist, {false, true}, {true, false}),
               std::invalid_argument);
}

// --- Extensions ---

TEST(Vbs, BodyEffectExtensionSlowsDischarge) {
  const auto tree = make_inverter_tree(tech07());
  const std::string leaf = tree.netlist.net_name(tree.leaves[0]);
  VbsOptions plain;
  plain.sleep_resistance = SleepTransistor(tech07(), 5.0).reff();
  VbsOptions body = plain;
  body.body_effect = true;
  const double d_plain = VbsSimulator(tree.netlist, plain).delay({false}, {true}, "in", leaf);
  const double d_body = VbsSimulator(tree.netlist, body).delay({false}, {true}, "in", leaf);
  EXPECT_GT(d_body, d_plain);
}

TEST(Vbs, VirtualGroundCapSmoothsBounce) {
  // Section 2.2: C_x filters the bounce; a large C_x must reduce the V_x
  // peak seen during the transition window.
  const auto tree = make_inverter_tree(tech07());
  VbsOptions no_cap;
  no_cap.sleep_resistance = SleepTransistor(tech07(), 8.0).reff();
  VbsOptions big_cap = no_cap;
  big_cap.virtual_ground_cap = 20e-12;  // 20 pF ("on the order of pico farads")
  const VbsResult a = VbsSimulator(tree.netlist, no_cap).run({false}, {true});
  const VbsResult b = VbsSimulator(tree.netlist, big_cap).run({false}, {true});
  EXPECT_LT(b.vx_peak, 0.5 * a.vx_peak);
}

TEST(Vbs, VirtualGroundCapSlowsRecovery) {
  // The same C_x keeps V_x elevated after the gates finish (the Section
  // 2.2 drawback).  Compare V_x shortly after the discharge ends.
  const auto tree = make_inverter_tree(tech07());
  VbsOptions big_cap;
  big_cap.sleep_resistance = SleepTransistor(tech07(), 8.0).reff();
  big_cap.virtual_ground_cap = 20e-12;
  const VbsResult res = VbsSimulator(tree.netlist, big_cap).run({false}, {true});
  // tau = R * Cx; at the final breakpoint V_x should still be well above 0.
  EXPECT_GT(res.virtual_ground.sample(res.finish_time), 1e-3);
}

TEST(Vbs, ReverseConductionPinsAndFlags) {
  // One heavy discharger + one idle-low gate: with the extension on, the
  // idle gate's output is pulled to V_x.
  const Technology t = tech07();
  Netlist nl(t);
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto oa = nl.add_inv("ga", a);
  const auto ob = nl.add_inv("gb", b);
  nl.add_load(oa, 200.0 * fF);
  nl.add_load(ob, 50.0 * fF);
  VbsOptions opt;
  opt.sleep_resistance = 4000.0;
  opt.reverse_conduction = true;
  // b stays high -> gb.out stays (logic) low; a rises -> ga discharges.
  const VbsResult res = VbsSimulator(nl, opt).run({false, true}, {true, true});
  const Pwl& w = res.outputs.get("gb.out");
  EXPECT_GT(w.max_value(), 0.01);  // pinned up toward Vx
  EXPECT_LE(w.max_value(), res.vx_peak + 1e-9);
}

TEST(Vbs, InputValidation) {
  const Technology t = tech07();
  Netlist nl = single_inverter(t, 50.0 * fF);
  VbsOptions opt;
  opt.sleep_resistance = -1.0;
  // Option-value failures are coded (kInvalidArgument) so sweep drivers
  // can classify them; structural misuse stays std::invalid_argument.
  try {
    const VbsSimulator bad(nl, opt);
    FAIL() << "expected NumericalError for a negative sleep resistance";
  } catch (const NumericalError& e) {
    EXPECT_EQ(static_cast<int>(e.info().code), static_cast<int>(FailureCode::kInvalidArgument));
  }
  const VbsSimulator sim(nl, {});
  EXPECT_THROW(sim.run({false, true}, {true, false}), std::invalid_argument);
}

TEST(Vbs, DelayReturnsNegativeForUnknownNets) {
  const Technology t = tech07();
  Netlist nl = single_inverter(t, 50.0 * fF);
  const VbsSimulator sim(nl, {});
  EXPECT_LT(sim.delay({false}, {true}, "nope", "inv.out"), 0.0);
  EXPECT_LT(sim.delay({false}, {true}, "in", "nope"), 0.0);
}

TEST(Vbs, AlphaOneIsSlowestDrive) {
  // At u < 1 V, u^1 > u^2, so alpha=1 drives MORE current and is faster;
  // this pins down the normalization convention (I = beta/2 * u^alpha
  // with u in volts).
  const Technology t = tech07();
  Netlist nl = single_inverter(t, 50.0 * fF);
  VbsOptions a2;
  VbsOptions a1;
  a1.alpha = 1.0;
  const double d2 = VbsSimulator(nl, a2).delay({false}, {true}, "in", "inv.out");
  const double d1 = VbsSimulator(nl, a1).delay({false}, {true}, "in", "inv.out");
  EXPECT_LT(d1, d2);
}

TEST(Vbs, InputSlopeFactorDelaysActivation) {
  const auto chain = make_inverter_chain(tech07(), 3);
  const std::string out = chain.netlist.net_name(chain.outputs.back());
  VbsOptions plain;
  VbsOptions lagged;
  lagged.input_slope_factor = 0.3;
  const double d0 = VbsSimulator(chain.netlist, plain).delay({false}, {true}, "in", out);
  const double d1 = VbsSimulator(chain.netlist, lagged).delay({false}, {true}, "in", out);
  EXPECT_GT(d1, d0 * 1.05);
}

TEST(Vbs, SupplyEnergyCountsRisingSwingsOnly) {
  const Technology t = tech07();
  Netlist nl = single_inverter(t, 50.0 * fF);
  const VbsSimulator sim(nl, {});
  // Output falls: no supply energy.  Output rises: CL * Vdd^2.
  EXPECT_DOUBLE_EQ(sim.run({false}, {true}).supply_energy, 0.0);
  const double e_rise = sim.run({true}, {false}).supply_energy;
  EXPECT_NEAR(e_rise, nl.output_load(0) * t.vdd * t.vdd, 1e-18);
}

// --- Failure paths: every throw carries a classified FailureInfo ---

TEST(VbsFailure, StalledGatesReportBreakpointRunaway) {
  // A PMOS threshold at Vdd zeroes the pull-up drive, so a rising output
  // has zero slope: the gate is active but can never produce a future
  // breakpoint.
  Technology t = tech07();
  t.pmos_low.vt0 = t.vdd;
  Netlist nl = single_inverter(t, 50.0 * fF);
  const VbsSimulator sim(nl, {});
  try {
    sim.run({true}, {false});  // input falls -> output tries to rise
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.info().code, FailureCode::kBreakpointRunaway);
    EXPECT_EQ(e.info().site, "VbsSimulator::run");
    EXPECT_NE(e.info().context.find("stalled"), std::string::npos) << e.what();
  }
}

TEST(VbsFailure, BreakpointBeyondTmaxReportsBreakpointRunaway) {
  // An absurd sleep resistance makes the discharge slope so shallow that
  // the predicted finish breakpoint lands far beyond t_max.
  const Technology t = tech07();
  Netlist nl = single_inverter(t, 50.0 * fF);
  VbsOptions opt;
  opt.sleep_resistance = 1e9;
  opt.t_max = 0.5 * ns;
  const VbsSimulator sim(nl, opt);
  try {
    sim.run({false}, {true});  // input rises -> output falls through the sleep path
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.info().code, FailureCode::kBreakpointRunaway);
    EXPECT_NE(e.info().context.find("t_max"), std::string::npos) << e.what();
  }
}

TEST(VbsFailure, BreakpointBudgetReportsDeadlineExceeded) {
  const Technology t = tech07();
  Netlist nl = single_inverter(t, 50.0 * fF);
  VbsOptions opt;
  opt.max_breakpoints = 1;
  const VbsSimulator sim(nl, opt);
  try {
    sim.run({false}, {true});
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.info().code, FailureCode::kDeadlineExceeded);
    EXPECT_NE(e.info().context.find("breakpoint budget"), std::string::npos) << e.what();
  }
}

TEST(Vbs, CriticalDelayPicksLatestOutput) {
  const auto adder = make_ripple_adder(tech07(), 3);
  VbsOptions opt;
  opt.sleep_resistance = SleepTransistor(tech07(), 10.0).reff();
  const VbsSimulator sim(adder.netlist, opt);
  std::vector<std::string> outs;
  for (const auto s : adder.sum) outs.push_back(adder.netlist.net_name(s));
  outs.push_back(adder.netlist.net_name(adder.cout));
  const auto v0 = concat_bits(bits_from_uint(0, 3), bits_from_uint(0, 3));
  const auto v1 = concat_bits(bits_from_uint(7, 3), bits_from_uint(1, 3));
  const double worst = sim.critical_delay(v0, v1, outs);
  const double s0 = sim.delay(v0, v1, "a0", outs[0]);
  EXPECT_GT(worst, 0.0);
  EXPECT_GE(worst, s0);
}

}  // namespace
}  // namespace mtcmos::core
