// Crash/resume soak: kill checkpointed sweeps at randomized journal
// offsets (via the fault-injection kill switch on the journal append
// path), optionally shear random byte counts off the journal tail (the
// torn record a SIGKILL mid-write leaves), resume, and require the
// merged result to be bit-identical to an uninterrupted run -- on both
// the switch-level and the transistor-level backend, including repeated
// kills of the same journal.
//
// Deliberately heavier than the unit suite: registered under the `soak`
// ctest configuration (ctest -C soak) so plain `ctest` skips it.  The
// RNG seed is fixed; every run exercises the same kill schedule.

#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "circuits/generators.hpp"
#include "sizing/checkpoint.hpp"
#include "sizing/session.hpp"
#include "sizing/sizing.hpp"
#include "sizing/supervisor.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/units.hpp"

namespace mtcmos {
namespace {

using sizing::Checkpoint;
using sizing::EvalBackend;
using sizing::EvalSession;
using sizing::SpiceBackend;
using sizing::SpiceBackendOptions;
using sizing::VbsBackend;
using sizing::VectorDelay;
using sizing::VectorPair;
using units::ns;

class CrashResumeSoak : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("crash_resume_soak." +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "." +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    faultinject::disarm_all();
    std::filesystem::remove_all(dir_);
  }

  std::string journal_path(int round) const {
    return (dir_ / ("round" + std::to_string(round) + ".mtj")).string();
  }

  std::filesystem::path dir_;
};

std::vector<std::string> adder_outputs(const circuits::RippleAdder& adder) {
  std::vector<std::string> outs;
  for (const auto s : adder.sum) outs.push_back(adder.netlist.net_name(s));
  outs.push_back(adder.netlist.net_name(adder.cout));
  return outs;
}

void expect_rank_identical(const std::vector<VectorDelay>& got,
                           const std::vector<VectorDelay>& want, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].pair.v0, want[i].pair.v0) << what << " item " << i;
    EXPECT_EQ(got[i].pair.v1, want[i].pair.v1) << what << " item " << i;
    EXPECT_EQ(got[i].delay_cmos, want[i].delay_cmos) << what << " item " << i;
    EXPECT_EQ(got[i].delay_mtcmos, want[i].delay_mtcmos) << what << " item " << i;
    EXPECT_EQ(got[i].degradation_pct, want[i].degradation_pct) << what << " item " << i;
  }
}

/// Kill one checkpointed rank_vectors at `kill_scope` (the journal append
/// of that item index throws, tearing the sweep down mid-run).  Returns
/// false when the kill never fired (the plan outlived the sweep -- e.g. a
/// second kill aimed at an item the journal already holds).
bool killed_rank(const EvalBackend& backend, const std::vector<VectorPair>& vectors, double wl,
                 const std::string& journal, std::int64_t kill_scope) {
  Checkpoint ckpt;
  ckpt.open(journal);
  EvalSession session;
  session.checkpoint = &ckpt;
  faultinject::arm(faultinject::Site::kJournalAppend, kill_scope, /*fail_hits=*/1);
  bool fired = true;
  try {
    (void)sizing::rank_vectors(backend, vectors, wl, session);
    fired = false;  // every targeted append was already journaled
  } catch (const NumericalError&) {
  }
  faultinject::disarm_all();
  return fired;
}

/// Shear `bytes` off the end of the journal file: the torn tail a hard
/// kill leaves mid-write.  Replay on the next open truncates back to the
/// last whole record.
void shear_tail(const std::string& journal, std::uintmax_t bytes) {
  const std::uintmax_t size = std::filesystem::file_size(journal);
  if (bytes >= size) bytes = size;
  std::filesystem::resize_file(journal, size - bytes);
}

std::vector<VectorDelay> resumed_rank(const EvalBackend& backend,
                                      const std::vector<VectorPair>& vectors, double wl,
                                      const std::string& journal, SweepReport* report) {
  Checkpoint ckpt;
  ckpt.open(journal);
  EvalSession session;
  session.checkpoint = &ckpt;
  session.report = report;
  return sizing::rank_vectors(backend, vectors, wl, session);
}

TEST_F(CrashResumeSoak, RandomizedKillOffsetsMergeBitIdenticallyOnVbs) {
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);
  const auto reference = sizing::rank_vectors(vbs, vectors, 10.0);

  std::mt19937 rng(20260806u);
  std::uniform_int_distribution<std::int64_t> scope_of(0,
                                                       static_cast<std::int64_t>(vectors.size()) -
                                                           1);
  std::uniform_int_distribution<std::uintmax_t> shear_of(0, 120);
  for (int round = 0; round < 16; ++round) {
    const std::string journal = journal_path(round);
    const std::int64_t scope = scope_of(rng);
    ASSERT_TRUE(killed_rank(vbs, vectors, 10.0, journal, scope)) << "round " << round;
    // Half the rounds also lose a random tail chunk, as a kill mid-write
    // would; replay must truncate back to a whole record and carry on.
    if (round % 2 == 1) shear_tail(journal, shear_of(rng));
    SweepReport report;
    const auto merged = resumed_rank(vbs, vectors, 10.0, journal, &report);
    EXPECT_EQ(report.succeeded + report.recovered, vectors.size()) << "round " << round;
    EXPECT_EQ(report.failed, 0u) << "round " << round;
    expect_rank_identical(merged, reference, "round " + std::to_string(round));
  }
}

TEST_F(CrashResumeSoak, RepeatedKillsOfOneJournalStillMerge) {
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);
  const auto reference = sizing::rank_vectors(vbs, vectors, 10.0);

  std::mt19937 rng(7u);
  std::uniform_int_distribution<std::int64_t> scope_of(0,
                                                       static_cast<std::int64_t>(vectors.size()) -
                                                           1);
  const std::string journal = journal_path(0);
  // Crash the same run five times at five different points before letting
  // it finish: each resume extends the journal monotonically.
  std::size_t journaled = 0;
  for (int kill = 0; kill < 5; ++kill) {
    (void)killed_rank(vbs, vectors, 10.0, journal, scope_of(rng));
    Checkpoint probe;
    probe.open(journal);
    EXPECT_GE(probe.journal().size(), journaled) << "kill " << kill;
    journaled = probe.journal().size();
  }
  SweepReport report;
  const auto merged = resumed_rank(vbs, vectors, 10.0, journal, &report);
  EXPECT_EQ(report.failed, 0u);
  expect_rank_identical(merged, reference, "after 5 kills");
}

TEST_F(CrashResumeSoak, RandomizedKillOffsetsMergeBitIdenticallyOnSpice) {
  const auto adder = circuits::make_ripple_adder(tech07(), 1);
  const auto outs = adder_outputs(adder);
  SpiceBackendOptions sopt;
  sopt.tstop = 12.0 * ns;
  const SpiceBackend spice(adder.netlist, outs, sopt);
  const auto vectors = sizing::all_vector_pairs(2);
  const auto reference = sizing::rank_vectors(spice, vectors, 10.0);

  std::mt19937 rng(97u);
  std::uniform_int_distribution<std::int64_t> scope_of(0,
                                                       static_cast<std::int64_t>(vectors.size()) -
                                                           1);
  std::uniform_int_distribution<std::uintmax_t> shear_of(0, 120);
  for (int round = 0; round < 6; ++round) {
    const std::string journal = journal_path(round);
    ASSERT_TRUE(killed_rank(spice, vectors, 10.0, journal, scope_of(rng))) << "round " << round;
    if (round % 2 == 1) shear_tail(journal, shear_of(rng));
    SweepReport report;
    const auto merged = resumed_rank(spice, vectors, 10.0, journal, &report);
    EXPECT_EQ(report.failed, 0u) << "round " << round;
    expect_rank_identical(merged, reference, "round " + std::to_string(round));
  }
}

TEST_F(CrashResumeSoak, KilledSizingBisectionResumesToTheSameResult) {
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);
  const auto reference = sizing::size_for_degradation(vbs, vectors, 5.0);

  std::mt19937 rng(11u);
  std::uniform_int_distribution<std::int64_t> scope_of(0,
                                                       static_cast<std::int64_t>(vectors.size()) -
                                                           1);
  for (int round = 0; round < 8; ++round) {
    const std::string journal = journal_path(round);
    {
      Checkpoint ckpt;
      ckpt.open(journal);
      EvalSession session;
      session.checkpoint = &ckpt;
      faultinject::arm(faultinject::Site::kJournalAppend, scope_of(rng), /*fail_hits=*/1);
      EXPECT_THROW(sizing::size_for_degradation(vbs, vectors, 5.0, {}, session),
                   NumericalError)
          << "round " << round;
      faultinject::disarm_all();
    }
    Checkpoint resumed;
    resumed.open(journal);
    EvalSession session;
    session.checkpoint = &resumed;
    const auto merged = sizing::size_for_degradation(vbs, vectors, 5.0, {}, session);
    EXPECT_EQ(merged.wl, reference.wl) << "round " << round;
    EXPECT_EQ(merged.degradation_pct, reference.degradation_pct) << "round " << round;
    EXPECT_EQ(merged.binding_vector.v0, reference.binding_vector.v0) << "round " << round;
    EXPECT_EQ(merged.binding_vector.v1, reference.binding_vector.v1) << "round " << round;
  }
}

TEST_F(CrashResumeSoak, CompactionBetweenKillsDoesNotDisturbResume) {
  // Interleave crash/resume with journal compaction: kill a sweep, compact
  // the survivor journal (atomic-rename replacement), shear a random tail
  // chunk off the NEXT kill, and keep going.  Compaction must never lose a
  // journaled item or disturb the final bit-identical merge.
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);
  const auto reference = sizing::rank_vectors(vbs, vectors, 10.0);

  std::mt19937 rng(31u);
  std::uniform_int_distribution<std::int64_t> scope_of(0,
                                                       static_cast<std::int64_t>(vectors.size()) -
                                                           1);
  std::uniform_int_distribution<std::uintmax_t> shear_of(1, 120);
  const std::string journal = journal_path(0);
  for (int kill = 0; kill < 5; ++kill) {
    (void)killed_rank(vbs, vectors, 10.0, journal, scope_of(rng));
    if (kill % 2 == 1) shear_tail(journal, shear_of(rng));
    Checkpoint survivor;
    survivor.open(journal);
    const std::size_t before = survivor.journal().size();
    survivor.journal().compact();
    EXPECT_EQ(survivor.journal().size(), before) << "kill " << kill;
  }
  SweepReport report;
  const auto merged = resumed_rank(vbs, vectors, 10.0, journal, &report);
  EXPECT_EQ(report.failed, 0u);
  expect_rank_identical(merged, reference, "compaction between kills");
}

// ---------------------------------------------------------------------------
// Supervised (multi-process) rounds: the PR7 acceptance scenario.  Worker
// processes are SIGKILLed at randomized item offsets via the kWorkerKill
// fault site; the supervisor restarts them, merges the shard journals, and
// the result must be bit-identical to a single-process single-thread run.

TEST_F(CrashResumeSoak, SupervisedSweepSurvivesRandomizedWorkerSigkills) {
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);
  const auto reference = sizing::rank_vectors(vbs, vectors, 10.0);

  std::mt19937 rng(20260807u);
  std::uniform_int_distribution<std::int64_t> scope_of(0,
                                                       static_cast<std::int64_t>(vectors.size()) -
                                                           1);
  std::uniform_int_distribution<int> shard_of(2, 4);
  for (int round = 0; round < 12; ++round) {
    // One to three distinct items whose first attempt SIGKILLs its worker
    // (generation 0 only, so restarts survive -- the restarted worker runs
    // at generation = strike count 1).
    const int kills = 1 + round % 3;
    for (int k = 0; k < kills; ++k) {
      faultinject::arm_generation(faultinject::Site::kWorkerKill, scope_of(rng),
                                  /*generation=*/0, /*fail_hits=*/1);
    }
    sizing::SupervisorOptions options;
    options.shards = shard_of(rng);
    options.dir = (dir_ / ("supervised" + std::to_string(round))).string();
    options.heartbeat_interval_s = 0.01;
    options.backoff_initial_s = 0.01;
    options.backoff_max_s = 0.05;
    const sizing::ShardedRankResult sharded =
        sizing::sharded_rank_vectors(vbs, vectors, 10.0, options);
    faultinject::disarm_all();
    EXPECT_EQ(sharded.stats.quarantined, 0u) << "round " << round;
    EXPECT_EQ(sharded.report.failed, 0u) << "round " << round;
    expect_rank_identical(sharded.ranked, reference, "supervised round " + std::to_string(round));
  }
}

TEST_F(CrashResumeSoak, SupervisedSweepQuarantinesDeterministicKillers) {
  const auto adder = circuits::make_ripple_adder(tech07(), 2);
  const VbsBackend vbs(adder.netlist, adder_outputs(adder));
  const auto vectors = sizing::all_vector_pairs(4);

  std::mt19937 rng(43u);
  std::uniform_int_distribution<std::int64_t> scope_of(0,
                                                       static_cast<std::int64_t>(vectors.size()) -
                                                           1);
  for (int round = 0; round < 6; ++round) {
    // An item that kills its worker on every attempt: strikes at
    // generations 0 and 1 cross the default poison threshold, so the
    // supervisor must quarantine it instead of looping restarts.
    const std::int64_t killer = scope_of(rng);
    faultinject::arm_generation(faultinject::Site::kWorkerKill, killer, /*generation=*/0,
                                /*fail_hits=*/1);
    faultinject::arm_generation(faultinject::Site::kWorkerKill, killer, /*generation=*/1,
                                /*fail_hits=*/1);
    sizing::SupervisorOptions options;
    options.shards = 3;
    options.dir = (dir_ / ("poison" + std::to_string(round))).string();
    options.heartbeat_interval_s = 0.01;
    options.backoff_initial_s = 0.01;
    options.backoff_max_s = 0.05;
    const sizing::ShardedRankResult sharded =
        sizing::sharded_rank_vectors(vbs, vectors, 10.0, options);
    faultinject::disarm_all();
    EXPECT_EQ(sharded.stats.quarantined, 1u) << "round " << round;
    ASSERT_EQ(sharded.report.failed, 1u) << "round " << round;
    EXPECT_EQ(sharded.report.failures[0].first, static_cast<std::size_t>(killer))
        << "round " << round;
    EXPECT_EQ(sharded.report.failures[0].second.code, FailureCode::kPoisonedItem)
        << "round " << round;
    // Bit-identity with a single-process run over the same surviving set.
    std::vector<VectorPair> pruned = vectors;
    pruned.erase(pruned.begin() + static_cast<std::ptrdiff_t>(killer));
    const auto expected = sizing::rank_vectors(vbs, pruned, 10.0);
    expect_rank_identical(sharded.ranked, expected, "poison round " + std::to_string(round));
  }
}

}  // namespace
}  // namespace mtcmos
