#!/usr/bin/env python3
"""Perf regression gate for the microbench suites.

Re-runs one microbench suite in a scratch directory, then compares the
fresh BENCH_<suite>.json against the committed baseline under
bench/baselines/.  The machine running CI is not the machine that produced
the baseline, so the gate is deliberately generous: a failure means the hot
path got ~3x slower relative to its own in-binary reference configuration,
or the optimized path stopped being bit-identical -- both genuine
regressions, not noise.

Suites:
  spice  SPICE hot path (BENCH_spice.json).  The in-binary reference is the
         legacy per-call configuration; also requires the device-evaluation
         bypass to fire (bypass_hits > 0).
  vbs    Batch VBS kernel (BENCH_vbs.json).  The in-binary reference is the
         scalar VbsSimulator sweep; single-threaded on both legs.
  campaign
         Streaming columnar campaign (BENCH_campaign.json, produced by the
         campaign_bench binary -- pass it as --microbench).  Gates on
         throughput (rows_per_second) instead of a speedup ratio, and
         additionally requires rss_bounded: the ~1.18M-row acceptance
         campaign must finish with bounded peak-RSS growth.
  daemon Sizing-as-a-service daemon (BENCH_daemon.json, produced by the
         daemon_bench binary -- pass it as --microbench).  Gates on
         dedup-hit replay throughput (rows_per_second) over the socket,
         and additionally requires clean_exit: the daemon must drain to
         exit code 0 after the run.

Common checks:
  * the benchmark itself succeeds (each suite self-checks the optimized
    results bit-for-bit against its reference and exits nonzero on
    mismatch);
  * fresh "identical" is true;
  * the fresh figure of merit (speedup, or rows_per_second for the
    campaign suite) >= baseline / threshold (default threshold 3x).
    Skipped with a warning when the fresh and baseline builds disagree on
    march_native -- ISA-specific baselines must not gate generic builds or
    vice versa.

Usage:
  check_bench.py --microbench build/bench/microbench \
                 --baseline bench/baselines/BENCH_spice.json \
                 [--suite spice|vbs|campaign|daemon] [--threshold 3.0] [--threads N]

--suite defaults from the baseline filename (BENCH_<suite>.json).
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile


def load_json(path: str, what: str, merit: str):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except FileNotFoundError:
        print(f"FAIL: {what} {path} does not exist")
        return None
    except json.JSONDecodeError as e:
        print(f"FAIL: {what} {path} is not valid JSON: {e}")
        return None
    if not isinstance(doc, dict) or not isinstance(doc.get(merit), (int, float)):
        print(f"FAIL: {what} {path} has no numeric '{merit}' field "
              "(wrong file, or written by an incompatible microbench?)")
        return None
    return doc


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--microbench", required=True, help="path to the microbench binary")
    ap.add_argument("--baseline", required=True,
                    help="committed baseline (bench/baselines/BENCH_<suite>.json)")
    ap.add_argument("--suite", choices=["spice", "vbs", "campaign", "daemon"],
                    help="which microbench suite to run (default: from the baseline filename)")
    ap.add_argument("--threshold", type=float, default=3.0,
                    help="allowed slowdown factor vs the baseline speedup (default 3)")
    ap.add_argument("--threads", type=int,
                    default=int(os.environ.get("MTCMOS_THREADS", "8") or "8"),
                    help="thread count for the spice parallel leg (default MTCMOS_THREADS or 8)")
    args = ap.parse_args()

    suite = args.suite
    if suite is None:
        m = re.search(r"BENCH_(\w+)\.json$", os.path.basename(args.baseline))
        if not m or m.group(1) not in ("spice", "vbs", "campaign", "daemon"):
            print(f"FAIL: cannot infer --suite from baseline name "
                  f"'{os.path.basename(args.baseline)}'; pass --suite explicitly")
            return 1
        suite = m.group(1)
    merit = "rows_per_second" if suite in ("campaign", "daemon") else "speedup"

    baseline = load_json(args.baseline, "baseline", merit)
    if baseline is None:
        print("(run microbench once and commit the BENCH json it writes)")
        return 1

    cmd = [os.path.abspath(args.microbench), "--only", suite]
    if suite == "spice":
        cmd += ["--threads", str(args.threads)]
    bench_name = f"BENCH_{suite}.json"
    with tempfile.TemporaryDirectory(prefix=f"bench_{suite}.") as tmp:
        proc = subprocess.run(cmd, cwd=tmp, capture_output=True, text=True)
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        if proc.returncode != 0:
            print(f"FAIL: microbench exited {proc.returncode} "
                  "(optimized results diverged or the run crashed)")
            return 1
        fresh = load_json(os.path.join(tmp, bench_name), "fresh", merit)
        if fresh is None:
            return 1

    failures = []
    if not fresh.get("identical", False):
        failures.append("optimized results are not bit-identical to the reference run")
    if suite == "spice" and fresh.get("bypass_hits", 0) <= 0:
        failures.append("bypass_hits == 0: the device-evaluation bypass never fired")
    if suite == "daemon" and not fresh.get("clean_exit", False):
        failures.append("clean_exit is false: the daemon did not drain to exit code 0")
    if suite == "campaign" and not fresh.get("rss_bounded", False):
        failures.append(
            f"rss_bounded is false: peak RSS grew {fresh.get('rss_delta_mb', 0.0):.1f} MB "
            "over the streaming campaign (or the campaign did not complete)")

    fresh_native = bool(fresh.get("march_native", False))
    base_native = bool(baseline.get("march_native", False))
    fresh_isa = fresh.get("simd_isa")
    base_isa = baseline.get("simd_isa")
    if fresh_native != base_native:
        # An -march=native binary vs a generic baseline (or vice versa) is an
        # ISA change, not a regression: check only the invariants above.
        print(f"NOTE: march_native mismatch (fresh {fresh_native}, baseline {base_native}); "
              f"skipping the {merit} comparison -- regenerate the baseline on this build "
              "to re-arm it")
    elif fresh_isa is not None and base_isa is not None and fresh_isa != base_isa:
        # Same rule for the compile-time SIMD ISA: an avx512 baseline must
        # not gate an sse2 CI box (or vice versa).  Older baselines without
        # the field still gate on march_native alone.
        print(f"NOTE: simd_isa mismatch (fresh {fresh_isa}, baseline {base_isa}); "
              f"skipping the {merit} comparison -- regenerate the baseline on this build "
              "to re-arm it")
    else:
        unit = " rows/s" if suite in ("campaign", "daemon") else "x"
        floor = baseline[merit] / args.threshold
        if fresh[merit] < floor:
            failures.append(
                f"{merit} {fresh[merit]:.2f}{unit} fell below {floor:.2f}{unit} "
                f"(baseline {baseline[merit]:.2f}{unit} / threshold {args.threshold:g})")
        print(f"{merit}: fresh {fresh[merit]:.2f}{unit} vs baseline "
              f"{baseline[merit]:.2f}{unit} (floor {floor:.2f}{unit})")
    if suite == "spice":
        print(f"bypass hit rate {fresh.get('bypass_hit_rate', 0.0):.1%}")
    if suite == "daemon":
        print(f"status RTT p50 {fresh.get('rtt_p50_us', 0.0):.0f} us "
              f"(mean {fresh.get('rtt_mean_us', 0.0):.0f} us)")
    if suite == "campaign":
        print(f"peak RSS growth {fresh.get('rss_delta_mb', 0.0):.1f} MB "
              f"(bounded: {fresh.get('rss_bounded', False)})")

    if failures:
        for msg in failures:
            print(f"FAIL: {msg}")
        return 1
    print(f"OK: {suite} hot path within the regression envelope")
    return 0


if __name__ == "__main__":
    sys.exit(main())
