#!/usr/bin/env python3
"""Perf regression gate for the SPICE hot path.

Re-runs `microbench --only spice` in a scratch directory, then compares the
fresh BENCH_spice.json against the committed baseline
(bench/baselines/BENCH_spice.json).  The machine running CI is not the
machine that produced the baseline, so the gate is deliberately generous: a
failure means the hot path got ~3x slower relative to its own in-binary
legacy configuration, or the pooled backend stopped being bit-identical --
both genuine regressions, not noise.

Checks:
  * the benchmark itself succeeds (it already self-checks pooled results
    against a serial run and exits nonzero on mismatch);
  * fresh "identical" is true;
  * fresh speedup >= baseline speedup / threshold (default threshold 3x);
  * the bypass is actually firing (bypass_hits > 0).

Usage:
  check_bench.py --microbench build/bench/microbench \
                 --baseline bench/baselines/BENCH_spice.json \
                 [--threshold 3.0] [--threads N]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--microbench", required=True, help="path to the microbench binary")
    ap.add_argument("--baseline", required=True, help="committed BENCH_spice.json")
    ap.add_argument("--threshold", type=float, default=3.0,
                    help="allowed slowdown factor vs the baseline speedup (default 3)")
    ap.add_argument("--threads", type=int,
                    default=int(os.environ.get("MTCMOS_THREADS", "8") or "8"),
                    help="thread count for the parallel leg (default MTCMOS_THREADS or 8)")
    args = ap.parse_args()

    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
    except FileNotFoundError:
        print(f"FAIL: baseline {args.baseline} does not exist "
              "(run microbench once and commit its BENCH_spice.json)")
        return 1
    except json.JSONDecodeError as e:
        print(f"FAIL: baseline {args.baseline} is not valid JSON: {e}")
        return 1
    if not isinstance(baseline, dict) or not isinstance(baseline.get("speedup"), (int, float)):
        print(f"FAIL: baseline {args.baseline} has no numeric 'speedup' field "
              "(wrong file, or written by an incompatible microbench?)")
        return 1

    with tempfile.TemporaryDirectory(prefix="bench_spice.") as tmp:
        proc = subprocess.run(
            [os.path.abspath(args.microbench), "--only", "spice",
             "--threads", str(args.threads)],
            cwd=tmp, capture_output=True, text=True)
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        if proc.returncode != 0:
            print(f"FAIL: microbench exited {proc.returncode} "
                  "(pooled results diverged or the run crashed)")
            return 1
        fresh_path = os.path.join(tmp, "BENCH_spice.json")
        try:
            with open(fresh_path, encoding="utf-8") as f:
                fresh = json.load(f)
        except FileNotFoundError:
            print("FAIL: microbench exited 0 but wrote no BENCH_spice.json")
            return 1
        except json.JSONDecodeError as e:
            print(f"FAIL: fresh BENCH_spice.json is not valid JSON: {e}")
            return 1
    if not isinstance(fresh, dict) or not isinstance(fresh.get("speedup"), (int, float)):
        print("FAIL: fresh BENCH_spice.json has no numeric 'speedup' field")
        return 1

    failures = []
    if not fresh.get("identical", False):
        failures.append("pooled parallel delays are not bit-identical to serial")
    if fresh.get("bypass_hits", 0) <= 0:
        failures.append("bypass_hits == 0: the device-evaluation bypass never fired")
    floor = baseline["speedup"] / args.threshold
    if fresh["speedup"] < floor:
        failures.append(
            f"speedup {fresh['speedup']:.2f}x fell below {floor:.2f}x "
            f"(baseline {baseline['speedup']:.2f}x / threshold {args.threshold:g})")

    print(f"speedup: fresh {fresh['speedup']:.2f}x vs baseline {baseline['speedup']:.2f}x "
          f"(floor {floor:.2f}x); bypass hit rate {fresh.get('bypass_hit_rate', 0.0):.1%}")
    if failures:
        for msg in failures:
            print(f"FAIL: {msg}")
        return 1
    print("OK: SPICE hot path within the regression envelope")
    return 0


if __name__ == "__main__":
    sys.exit(main())
